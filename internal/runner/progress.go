package runner

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Progress streams per-job completion lines to a writer and accumulates a
// machine-readable summary of the run: jobs done/total, cache hits, per-job
// wall time and an ETA extrapolated from the throughput so far. It is safe
// for concurrent use by the worker pool.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer // nil = collect silently
	total int
	done  int
	hits  int
	fails int
	skips int
	start time.Time
	jobs  []JobReport
}

// JobReport is one job's outcome in the exported summary.
type JobReport struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Cached  bool    `json:"cached,omitempty"`
	Skipped bool    `json:"skipped,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// Summary is the JSON-exportable view of a finished (or failed) run.
type Summary struct {
	Total          int         `json:"total"`
	Done           int         `json:"done"`
	CacheHits      int         `json:"cacheHits"`
	Failed         int         `json:"failed"`
	Skipped        int         `json:"skipped"`
	ElapsedSeconds float64     `json:"elapsedSeconds"`
	Jobs           []JobReport `json:"jobs"`
}

// NewProgress returns a reporter writing one line per finished job to w.
// A nil w collects the summary without emitting lines.
func NewProgress(w io.Writer) *Progress {
	return &Progress{w: w}
}

func (p *Progress) begin(total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total = total
	p.start = time.Now()
}

// observe records one finished job and emits its progress line.
func (p *Progress) observe(r Result) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	rep := JobReport{Name: r.Name, Seconds: r.Wall.Seconds(), Cached: r.Cached, Skipped: r.Skipped}
	if r.Err != nil {
		rep.Error = r.Err.Error()
		if r.Skipped {
			p.skips++
		} else {
			p.fails++
		}
	} else if r.Cached {
		p.hits++
	}
	p.jobs = append(p.jobs, rep)
	if p.w == nil {
		return
	}
	prefix := fmt.Sprintf("[%*d/%d] %s", digits(p.total), p.done, p.total, r.Name)
	switch {
	case r.Skipped:
		fmt.Fprintf(p.w, "%s skipped: %v\n", prefix, r.Err)
	case r.Err != nil:
		fmt.Fprintf(p.w, "%s FAILED after %v: %v\n", prefix, r.Wall.Round(time.Millisecond), r.Err)
	case r.Cached:
		fmt.Fprintf(p.w, "%s cached%s\n", prefix, p.etaLocked())
	default:
		fmt.Fprintf(p.w, "%s %v%s\n", prefix, r.Wall.Round(time.Millisecond), p.etaLocked())
	}
}

// etaLocked extrapolates the remaining wall time from throughput so far.
// Must be called with p.mu held.
func (p *Progress) etaLocked() string {
	left := p.total - p.done
	if left <= 0 || p.done == 0 {
		return ""
	}
	elapsed := time.Since(p.start)
	eta := time.Duration(float64(elapsed) / float64(p.done) * float64(left))
	return fmt.Sprintf("  (eta %v)", eta.Round(time.Second))
}

func digits(n int) int {
	d := 1
	for n >= 10 {
		n /= 10
		d++
	}
	return d
}

// Summary snapshots the run's accounting. Jobs are sorted by name so the
// export is deterministic regardless of completion order.
func (p *Progress) Summary() Summary {
	p.mu.Lock()
	defer p.mu.Unlock()
	jobs := append([]JobReport(nil), p.jobs...)
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Name < jobs[j].Name })
	elapsed := 0.0
	if !p.start.IsZero() {
		elapsed = time.Since(p.start).Seconds()
	}
	return Summary{
		Total:          p.total,
		Done:           p.done,
		CacheHits:      p.hits,
		Failed:         p.fails,
		Skipped:        p.skips,
		ElapsedSeconds: elapsed,
		Jobs:           jobs,
	}
}

// WriteJSON writes the summary as indented JSON.
func (s Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
