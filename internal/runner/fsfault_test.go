package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"vcoma/internal/fsio"
)

// countEntries walks the cache dir counting files outside quarantine.
func countEntries(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() && d.Name() == quarantineDir {
			return filepath.SkipDir
		}
		if !d.IsDir() {
			n++
		}
		return nil
	})
	return n
}

func TestPutENOSPCLeavesNoPartialEntry(t *testing.T) {
	dir := t.TempDir()
	fs := fsio.New(fsio.MustFailpoints("enospc:put:*"))
	c, err := OpenCacheFS(dir, fs)
	if err != nil {
		t.Fatalf("OpenCacheFS: %v", err)
	}
	key := KeyOf("enospc-test")
	err = c.Put(key, "job-a", map[string]int{"v": 1})
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Put under ENOSPC: want ENOSPC, got %v", err)
	}
	if got := countEntries(t, dir); got != 0 {
		t.Fatalf("failed Put left %d files behind", got)
	}
	var out map[string]int
	if c.Get(key, &out) {
		t.Fatalf("Get after failed Put must miss")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after failed Put", c.Len())
	}
}

func TestPutFsyncFailureLeavesNoPartialEntry(t *testing.T) {
	// The nastier case the old writeFileAtomic couldn't even express: the
	// data is written but the fsync fails, so the bytes may not be on disk.
	// The atomic writer must abort before the rename.
	dir := t.TempDir()
	fs := fsio.New(fsio.MustFailpoints("eio:fsync:*"))
	c, err := OpenCacheFS(dir, fs)
	if err != nil {
		t.Fatalf("OpenCacheFS: %v", err)
	}
	key := KeyOf("fsync-test")
	if err := c.Put(key, "job-a", 42); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Put under failing fsync: want EIO, got %v", err)
	}
	if got := countEntries(t, dir); got != 0 {
		t.Fatalf("failed Put left %d files behind", got)
	}
}

func TestRunStillReturnsResultWhenPutFails(t *testing.T) {
	// A dead store must not take the computation down with it: the job's
	// in-memory result is returned even though nothing could be persisted.
	dir := t.TempDir()
	fs := fsio.New(fsio.MustFailpoints("enospc:put:*"))
	c, err := OpenCacheFS(dir, fs)
	if err != nil {
		t.Fatalf("OpenCacheFS: %v", err)
	}
	job := New("a", KeyOf("run-put-fail"), func(context.Context) (int, error) { return 7, nil })
	res, err := Run(context.Background(), []Job{job}, Options{Workers: 1, Cache: c})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r := res.Jobs["a"]
	if r.Err != nil || r.Value.(int) != 7 {
		t.Fatalf("job result lost to store failure: %+v", r)
	}
	if c.Len() != 0 {
		t.Fatalf("entry materialized despite injected ENOSPC")
	}
}

func TestCachePutDurabilityOpOrder(t *testing.T) {
	// Regression test for the original writeFileAtomic hole, via the
	// failpoint op log: Cache.Put must fsync the temp before renaming it
	// into place and fsync the parent directory after.
	dir := t.TempDir()
	fs := fsio.New(nil)
	rec := fsio.NewRecorder(dir, false)
	fs.SetRecorder(rec)
	c, err := OpenCacheFS(dir, fs)
	if err != nil {
		t.Fatalf("OpenCacheFS: %v", err)
	}
	if err := c.Put(KeyOf("order"), "job-a", "v"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	var seq []string
	for _, op := range rec.Ops() {
		if op.Tag == "put" && op.Op != fsio.OpMkdir {
			seq = append(seq, op.Op)
		}
	}
	want := []string{fsio.OpCreate, fsio.OpWrite, fsio.OpFsync, fsio.OpRename, fsio.OpFsyncDir}
	if strings.Join(seq, ",") != strings.Join(want, ",") {
		t.Fatalf("Put op order = %v, want %v", seq, want)
	}
}

func TestTornJournalAppendIsDroppedOnResume(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.json")
	plan := KeyOf("torn-journal-plan")

	// Header (append 1) lands whole; the first record (append 2) tears
	// after 5 bytes.
	fs := fsio.New(nil)
	j, err := CreateJournalFS(jpath, plan, 2, fs)
	if err != nil {
		t.Fatalf("CreateJournalFS: %v", err)
	}
	fs.SetFailpoints(fsio.MustFailpoints("torn:journal:5"))
	j.record(Result{Name: "jobs/one", Attempts: 1})
	fs.SetFailpoints(nil)
	j.record(Result{Name: "jobs/two", Attempts: 1})
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, entries, err := ResumeJournalFS(jpath, plan, nil)
	if err != nil {
		t.Fatalf("ResumeJournalFS: %v", err)
	}
	if _, ok := entries["jobs/one"]; ok {
		t.Fatalf("torn record for jobs/one must not resume: %+v", entries)
	}
	if e, ok := entries["jobs/two"]; !ok || e.Status != "done" {
		t.Fatalf("intact record lost: %+v", entries)
	}
}

func TestJournalAppendsAfterPowerCutDoNotCorruptEarlierRecords(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.json")
	plan := KeyOf("powercut-journal-plan")
	// Header: open+append+fsync = 3 ops; first record: append+fsync = 2.
	// Cut the power right after (op 5), so the second record never lands.
	fs := fsio.New(fsio.MustFailpoints("powercut:5"))
	j, err := CreateJournalFS(jpath, plan, 2, fs)
	if err != nil {
		t.Fatalf("CreateJournalFS: %v", err)
	}
	j.record(Result{Name: "jobs/one", Attempts: 1})
	j.record(Result{Name: "jobs/two", Attempts: 1}) // power is off; swallowed
	j.Close()

	_, entries, err := ResumeJournalFS(jpath, plan, nil)
	if err != nil {
		t.Fatalf("ResumeJournalFS: %v", err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries after power cut = %+v, want only jobs/one", entries)
	}
	if e := entries["jobs/one"]; e.Status != "done" {
		t.Fatalf("jobs/one = %+v", e)
	}
}

func TestEvictionUnderRemoveFailureKeepsCacheConsistent(t *testing.T) {
	dir := t.TempDir()
	fs := fsio.New(nil)
	c, err := OpenCacheFS(dir, fs)
	if err != nil {
		t.Fatalf("OpenCacheFS: %v", err)
	}
	keys := make([]Key, 3)
	for i := range keys {
		keys[i] = KeyOf(fmt.Sprintf("evict-%d", i))
		if err := c.Put(keys[i], "job", i); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	fs.SetFailpoints(fsio.MustFailpoints("eio:evict:*"))
	if err := c.Remove(keys[0]); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Remove under EIO: want EIO, got %v", err)
	}
	fs.SetFailpoints(nil)
	// The failed removal must not have damaged the entry: it still reads
	// back validly, and nothing was quarantined.
	var v int
	if !c.Get(keys[0], &v) || v != 0 {
		t.Fatalf("entry corrupted by failed eviction: %v %d", c.Get(keys[0], &v), v)
	}
	if c.Quarantined() != 0 {
		t.Fatalf("failed eviction quarantined an entry")
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}

func TestClassifyDisk(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want ErrClass
	}{
		{"enospc", syscall.ENOSPC, ClassDisk},
		{"wrapped enospc", fmt.Errorf("saving: %w", syscall.ENOSPC), ClassDisk},
		{"eio", fmt.Errorf("x: %w", syscall.EIO), ClassDisk},
		{"erofs", syscall.EROFS, ClassDisk},
		{"edquot", syscall.EDQUOT, ClassDisk},
		{"injected fault", &fsio.FaultError{Op: "write", Err: syscall.ENOSPC}, ClassDisk},
		// Precedence: disk beats an explicit Transient marker — retrying a
		// full disk inside a backoff window is wasted time.
		{"transient-wrapped disk", Transient(syscall.ENOSPC), ClassDisk},
		// ...but a panic still outranks everything.
		{"panic over disk", &PanicError{Job: "j", Value: syscall.ENOSPC}, ClassPanic},
		{"plain transient", Transient(errors.New("flaky")), ClassTransient},
		{"cancelled", context.Canceled, ClassCancelled},
		{"deadline", context.DeadlineExceeded, ClassTimeout},
		{"permanent", errors.New("deterministic"), ClassPermanent},
		{"nil", nil, ClassNone},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
	if ClassDisk.String() != "disk" {
		t.Errorf("ClassDisk.String() = %q", ClassDisk.String())
	}
}

func TestRunDoesNotRetryDiskErrors(t *testing.T) {
	attempts := 0
	job := New("a", "", func(context.Context) (int, error) {
		attempts++
		return 0, Transient(fmt.Errorf("store: %w", syscall.ENOSPC))
	})
	res, _ := Run(context.Background(), []Job{job}, Options{
		Workers: 1,
		Policy:  CollectAll,
		Retry:   Retry{Max: 3, BaseDelay: 1, MaxDelay: 1},
	})
	r := res.Jobs["a"]
	if r.Class != ClassDisk {
		t.Fatalf("class = %v, want ClassDisk", r.Class)
	}
	if attempts != 1 {
		t.Fatalf("disk error retried %d times; must fail fast", attempts)
	}
}
