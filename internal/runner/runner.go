// Package runner is a generic parallel experiment scheduler: it takes a DAG
// of named simulation jobs, executes them on a bounded worker pool, and
// layers three cross-cutting services over the execution — a
// content-addressed on-disk result cache (Cache), robustness (per-job panic
// recovery, context cancellation, fail-fast or collect-all error policies),
// and observability (a Progress reporter with per-job wall times, cache-hit
// counts and an ETA).
//
// Jobs are pure functions keyed by a deterministic content hash of their
// inputs (KeyOf), so results are position-independent: the same suite
// produces byte-identical reports at any worker count and from any cache
// state. The experiment harness (internal/experiments) enumerates the
// paper's evaluation grid as runner jobs; cmd/vcoma-report and
// cmd/vcoma-sweep execute them through this package.
package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"vcoma/internal/obs"
)

// Job is one schedulable unit of work. Construct jobs with New so the
// result type is captured for cache decoding; the zero Job is invalid.
type Job struct {
	// Name uniquely identifies the job within one Run and labels it in
	// progress output and results.
	Name string
	// Key is the content hash of the job's inputs. Jobs with equal keys
	// compute equal results and share cache entries. Empty = uncacheable.
	Key Key
	// Deps names jobs that must succeed before this one starts.
	Deps []string

	run    func(context.Context) (any, error)
	decode func(json.RawMessage) (any, error)
}

// New builds a job from a typed function. The result type T must be
// JSON-round-trippable if the job is to be cached: a cache hit yields
// exactly the value json.Unmarshal reconstructs, and the runner relies on
// that being indistinguishable from a fresh computation.
func New[T any](name string, key Key, fn func(context.Context) (T, error)) Job {
	return Job{
		Name: name,
		Key:  key,
		run: func(ctx context.Context) (any, error) {
			return fn(ctx)
		},
		decode: func(raw json.RawMessage) (any, error) {
			var v T
			if err := json.Unmarshal(raw, &v); err != nil {
				return nil, err
			}
			return v, nil
		},
	}
}

// Policy selects how the pool reacts to a failing job.
type Policy int

const (
	// FailFast cancels the whole run at the first job error; queued jobs
	// are skipped and Run returns that first error.
	FailFast Policy = iota
	// CollectAll keeps running every job whose dependencies succeeded and
	// returns the joined errors at the end.
	CollectAll
)

// Options configures a Run.
type Options struct {
	// Workers bounds concurrent jobs; <= 0 means GOMAXPROCS.
	Workers int
	// Cache, if non-nil, serves and stores results of keyed jobs.
	Cache *Cache
	// Policy is the error policy; the zero value is FailFast.
	Policy Policy
	// Progress, if non-nil, receives per-job completion events.
	Progress *Progress
	// Metrics gives each freshly-computed job its own obs.Observer,
	// reachable inside the job via ObserverFrom(ctx). When the job
	// succeeds, is keyed and a Cache is attached, the observer's time
	// series and histograms are written next to the cache entry as
	// <key>.metrics.json. Cache hits have no metrics to record.
	Metrics bool
	// MetricsInterval is the sampler epoch in simulated cycles for
	// Metrics-enabled runs; 0 means DefaultMetricsInterval.
	MetricsInterval uint64
	// JobTimeout bounds every job attempt with a context deadline; jobs
	// that honour their context (all simulation passes do, via the sim
	// watchdog) abort with a timeout-class error and a diagnostic dump.
	// 0 means unbounded.
	JobTimeout time.Duration
	// Retry is the transient-failure policy: jobs whose error classifies
	// as ClassTransient re-run with exponential backoff up to Retry.Max
	// times. The zero value never retries.
	Retry Retry
	// Journal, if non-nil, records every completed job so an interrupted
	// suite can be resumed (vcoma-sweep -resume).
	Journal *Journal
}

// DefaultMetricsInterval is the sampler epoch used when Options.Metrics is
// on and no interval is given.
const DefaultMetricsInterval = 10000

// obsCtxKey carries a job's Observer through its context.
type obsCtxKey struct{}

// ObserverFrom returns the observability sink a Metrics-enabled Run
// installed for this job, or nil. Job functions pass it to instrumented
// entry points (e.g. vcoma.RunInstrumented); a nil result degrades to an
// uninstrumented run.
func ObserverFrom(ctx context.Context) *obs.Observer {
	o, _ := ctx.Value(obsCtxKey{}).(*obs.Observer)
	return o
}

// JobMetrics is the sidecar written next to a cache entry for
// Metrics-enabled runs.
type JobMetrics struct {
	Job        string                  `json:"job"`
	TimeSeries *obs.TimeSeries         `json:"timeSeries,omitempty"`
	Histograms []obs.HistogramSnapshot `json:"histograms,omitempty"`
}

// Result is one job's outcome.
type Result struct {
	Name string
	// Value is the job's result (the T passed to New), either freshly
	// computed or decoded from the cache.
	Value any
	Err   error
	// Cached reports that Value was served from the cache.
	Cached bool
	// Skipped reports that the job never ran (failed dependency or
	// cancelled run); Err carries the reason.
	Skipped bool
	// Wall is the job's observed wall time (≈0 for cache hits and skips).
	Wall time.Duration
	// Attempts is how many times the job executed (> 1 after transient
	// retries; 0 for cache hits and skips).
	Attempts int
	// Class is the taxonomy of Err (ClassNone when the job succeeded).
	Class ErrClass
}

// RunResult is the outcome of a whole Run.
type RunResult struct {
	// Jobs holds every job's result by name.
	Jobs map[string]Result
	// CacheHits counts jobs served from the cache.
	CacheHits int
	// Elapsed is the wall time of the whole run.
	Elapsed time.Duration
}

// ValueOf extracts the typed result of a named job.
func ValueOf[T any](r *RunResult, name string) (T, error) {
	var zero T
	res, ok := r.Jobs[name]
	if !ok {
		return zero, fmt.Errorf("runner: no job %q in run", name)
	}
	if res.Err != nil {
		return zero, res.Err
	}
	v, ok := res.Value.(T)
	if !ok {
		return zero, fmt.Errorf("runner: job %q produced %T, want %T", name, res.Value, zero)
	}
	return v, nil
}

// PanicError wraps a panic recovered inside a job so one diverging
// simulation cannot take down the whole sweep.
type PanicError struct {
	Job   string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %s panicked: %v", e.Job, e.Value)
}

// ErrSkipped is wrapped into the Err of jobs that never ran.
var ErrSkipped = errors.New("job skipped")

// jobState tracks one job through the scheduler.
type jobState struct {
	job     *Job
	waiting int      // unfinished dependencies
	deps    []string // resolved dependency names
}

// Run executes the job DAG and returns every job's result. The returned
// error is nil only if every job succeeded; under FailFast it is the first
// job error, under CollectAll the join of all of them. The Jobs map is
// complete in either case (failed and skipped jobs carry their Err), so
// callers can render partial results.
func Run(ctx context.Context, jobs []Job, opt Options) (*RunResult, error) {
	start := time.Now()
	states := make(map[string]*jobState, len(jobs))
	dependents := make(map[string][]string)
	for i := range jobs {
		j := &jobs[i]
		if j.Name == "" || j.run == nil {
			return nil, fmt.Errorf("runner: job %d is invalid (empty name or not built with New)", i)
		}
		if _, dup := states[j.Name]; dup {
			return nil, fmt.Errorf("runner: duplicate job name %q", j.Name)
		}
		states[j.Name] = &jobState{job: j, waiting: len(j.Deps), deps: j.Deps}
	}
	for _, j := range jobs {
		for _, d := range j.Deps {
			if _, ok := states[d]; !ok {
				return nil, fmt.Errorf("runner: job %q depends on unknown job %q", j.Name, d)
			}
			dependents[d] = append(dependents[d], j.Name)
		}
	}
	if err := checkAcyclic(states, dependents); err != nil {
		return nil, err
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) && len(jobs) > 0 {
		workers = len(jobs)
	}
	if opt.Progress != nil {
		opt.Progress.begin(len(jobs))
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu        sync.Mutex
		results   = make(map[string]Result, len(jobs))
		remaining = len(jobs)
		firstErr  error
		ready     = make(chan *Job, len(jobs))
		closed    bool
	)
	closeReady := func() { // with mu held
		if !closed {
			closed = true
			close(ready)
		}
	}
	// finish records a result and releases or skips dependents. Skip
	// cascades are handled iteratively with a local queue to keep the
	// critical section simple.
	finish := func(r Result) {
		mu.Lock()
		queue := []Result{r}
		for len(queue) > 0 {
			res := queue[0]
			queue = queue[1:]
			if _, done := results[res.Name]; done {
				continue
			}
			results[res.Name] = res
			remaining--
			if opt.Journal != nil && !res.Skipped {
				opt.Journal.record(res)
			}
			if res.Err != nil && !res.Skipped && firstErr == nil {
				firstErr = res.Err
				if opt.Policy == FailFast {
					cancel()
				}
			}
			for _, depName := range dependents[res.Name] {
				if _, done := results[depName]; done {
					continue // already skipped via another failed dependency
				}
				ds := states[depName]
				ds.waiting--
				if res.Err != nil {
					queue = append(queue, Result{
						Name:    depName,
						Err:     fmt.Errorf("%w: dependency %s failed: %v", ErrSkipped, res.Name, res.Err),
						Skipped: true,
					})
				} else if ds.waiting == 0 {
					ready <- ds.job
				}
			}
			if opt.Progress != nil {
				opt.Progress.observe(res)
			}
		}
		if remaining == 0 {
			closeReady()
		}
		mu.Unlock()
	}

	// Seed the pool with dependency-free jobs.
	mu.Lock()
	seeded := false
	for _, st := range states {
		if st.waiting == 0 {
			ready <- st.job
			seeded = true
		}
	}
	if len(jobs) == 0 {
		closeReady()
	} else if !seeded {
		mu.Unlock()
		return nil, errors.New("runner: no runnable jobs (dependency deadlock)")
	}
	mu.Unlock()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case j, ok := <-ready:
					if !ok {
						return
					}
					if ctx.Err() != nil {
						finish(Result{Name: j.Name, Err: fmt.Errorf("%w: %v", ErrSkipped, ctx.Err()), Skipped: true})
						continue
					}
					finish(execute(ctx, j, opt))
				}
			}
		}()
	}
	wg.Wait()

	// A cancelled run leaves jobs that never reached the pool; record them
	// as skipped so the result map is total.
	mu.Lock()
	for name := range states {
		if _, ok := results[name]; !ok {
			r := Result{Name: name, Err: fmt.Errorf("%w: %v", ErrSkipped, context.Cause(ctx)), Skipped: true}
			results[name] = r
			if opt.Progress != nil {
				opt.Progress.observe(r)
			}
		}
	}
	mu.Unlock()

	rr := &RunResult{Jobs: results, Elapsed: time.Since(start)}
	var errs []error
	for _, r := range results {
		if r.Cached {
			rr.CacheHits++
		}
		if r.Err != nil && !r.Skipped {
			errs = append(errs, fmt.Errorf("%s: %w", r.Name, r.Err))
		}
	}
	if opt.Policy == FailFast && firstErr != nil {
		return rr, firstErr
	}
	if len(errs) > 0 {
		return rr, errors.Join(errs...)
	}
	if anySkipped(results) {
		// No job failed but some never ran: the parent context was
		// cancelled.
		return rr, context.Cause(ctx)
	}
	return rr, nil
}

func anySkipped(results map[string]Result) bool {
	for _, r := range results {
		if r.Skipped {
			return true
		}
	}
	return false
}

// execute runs one job: cache probe, recovery-wrapped attempts with
// bounded retry for transient failures, cache fill.
func execute(ctx context.Context, j *Job, opt Options) (res Result) {
	start := time.Now()
	res.Name = j.Name
	span := obs.SpanFrom(ctx) // request-scoped trace; nil = all no-ops
	if opt.Cache != nil && j.Key != "" && j.decode != nil {
		probe := span.StartChild("cache-probe")
		raw, ok := opt.Cache.get(j.Key)
		if ok {
			if v, err := j.decode(raw); err == nil {
				probe.SetAttr("hit", "true")
				probe.End()
				res.Value, res.Cached = v, true
				res.Wall = time.Since(start)
				return res
			}
			// The entry is well-formed but does not decode into this job's
			// result type: quarantine it for inspection and recompute.
			opt.Cache.Quarantine(j.Key, fmt.Sprintf("entry does not decode into %s's result type", j.Name))
		}
		probe.SetAttr("hit", "false")
		probe.End()
	}
	var o *obs.Observer
	for attempt := 0; ; attempt++ {
		res.Attempts = attempt + 1
		asp := span.StartChild("attempt")
		asp.SetAttrUint("n", uint64(attempt+1))
		res.Value, o, res.Err = runAttempt(obs.WithSpan(ctx, asp), j, opt)
		res.Class = Classify(res.Err)
		if res.Err != nil {
			asp.SetAttr("class", res.Class.String())
		}
		asp.End()
		if res.Class != ClassTransient || attempt >= opt.Retry.Max {
			break
		}
		if !sleepCtx(ctx, opt.Retry.delay(j.Name, attempt)) {
			// Cancelled while backing off: surface the cancellation, keep
			// the transient cause for the log.
			res.Err = fmt.Errorf("%w (while backing off after: %v)", context.Cause(ctx), res.Err)
			res.Class = ClassCancelled
			break
		}
	}
	res.Wall = time.Since(start)
	if res.Err == nil && opt.Cache != nil && j.Key != "" {
		// A failed write only costs a recomputation next run.
		put := span.StartChild("store-put")
		_ = opt.Cache.Put(j.Key, j.Name, res.Value)
		put.End()
		if o != nil && o.Registry.Len() > 0 {
			ts := o.Sampler.Export()
			_ = opt.Cache.PutMetrics(j.Key, JobMetrics{
				Job:        j.Name,
				TimeSeries: &ts,
				Histograms: o.Registry.Histograms(),
			})
		}
	}
	return res
}

// runAttempt performs one recovery-wrapped call of the job function under
// the per-attempt deadline, returning the attempt's observer for the
// metrics sidecar.
func runAttempt(ctx context.Context, j *Job, opt Options) (v any, o *obs.Observer, err error) {
	if opt.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.JobTimeout)
		defer cancel()
	}
	if opt.Metrics {
		interval := opt.MetricsInterval
		if interval == 0 {
			interval = DefaultMetricsInterval
		}
		o = obs.New(obs.Options{MetricsInterval: interval})
		ctx = context.WithValue(ctx, obsCtxKey{}, o)
	}
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Job: j.Name, Value: r, Stack: debug.Stack()}
		}
	}()
	v, err = j.run(ctx)
	return v, o, err
}

// checkAcyclic runs Kahn's algorithm over the dependency graph.
func checkAcyclic(states map[string]*jobState, dependents map[string][]string) error {
	indeg := make(map[string]int, len(states))
	var queue []string
	for name, st := range states {
		indeg[name] = len(st.deps)
		if len(st.deps) == 0 {
			queue = append(queue, name)
		}
	}
	seen := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		seen++
		for _, d := range dependents[n] {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if seen != len(states) {
		return errors.New("runner: dependency cycle among jobs")
	}
	return nil
}
