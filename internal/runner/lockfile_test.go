package runner

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestDirLockExcludesSecondHolder(t *testing.T) {
	dir := t.TempDir()
	l, err := AcquireDirLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AcquireDirLock(dir); !errors.Is(err, ErrLocked) {
		t.Fatalf("second acquire: got %v, want ErrLocked", err)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	l2, err := AcquireDirLock(dir)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	l2.Release()
}

func TestDirLockBreaksStaleLock(t *testing.T) {
	dir := t.TempDir()
	// A lock held by a PID that cannot be alive (pid_max is far below this).
	stale, _ := json.Marshal(lockInfo{PID: 1 << 30, Started: time.Now()})
	if err := os.WriteFile(filepath.Join(dir, lockFileName), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := AcquireDirLock(dir)
	if err != nil {
		t.Fatalf("stale lock not broken: %v", err)
	}
	l.Release()
}

func TestDirLockBreaksTornLockFile(t *testing.T) {
	dir := t.TempDir()
	// A crash mid-write leaves an unparsable lock file: treated as stale.
	if err := os.WriteFile(filepath.Join(dir, lockFileName), []byte(`{"pid":`), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := AcquireDirLock(dir)
	if err != nil {
		t.Fatalf("torn lock not broken: %v", err)
	}
	l.Release()
}

func TestDirLockNilRelease(t *testing.T) {
	var l *DirLock
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
}
