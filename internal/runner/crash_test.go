package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"vcoma/internal/fsio"
	"vcoma/internal/fsio/crashsim"
)

// TestCrashSweepCachePutServesWholeEntriesOrNothing records a trace of
// cache puts (including a quarantine) and asserts that in every power-cut
// state a reopened cache serves each key either its exact stored value or a
// miss — never torn bytes. Torn visible entries must go to quarantine.
func TestCrashSweepCachePutServesWholeEntriesOrNothing(t *testing.T) {
	root := t.TempDir()
	fs := fsio.New(nil)
	rec := fsio.NewRecorder(root, true)
	fs.SetRecorder(rec)
	c, err := OpenCacheFS(root, fs)
	if err != nil {
		t.Fatalf("OpenCacheFS: %v", err)
	}
	want := map[Key]string{}
	for i := 0; i < 3; i++ {
		key := KeyOf("crash-cache", i)
		val := fmt.Sprintf("value-%d-%s", i, key[:8])
		if err := c.Put(key, "job", val); err != nil {
			t.Fatalf("Put: %v", err)
		}
		want[key] = val
	}
	// A quarantine is part of the recorded story too: corrupt one entry in
	// place through the seam, then trigger the quarantine rename.
	var victim Key
	for k := range want {
		victim = k
		break
	}
	if err := fs.WriteFile("corrupt", c.EntryPath(victim), []byte("{torn")); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	c.SetLog(nil)
	if _, ok := c.GetRaw(victim); ok {
		t.Fatalf("corrupt entry served")
	}
	delete(want, victim)

	err = crashsim.Run(rec.Ops(), t.TempDir(), func(dir string) error {
		cc, err := OpenCache(dir)
		if err != nil {
			return err
		}
		cc.SetLog(nil)
		for key, val := range want {
			raw, ok := cc.GetRaw(key)
			if !ok {
				continue // a miss is a legal crash outcome; recompute covers it
			}
			var got string
			if err := json.Unmarshal(raw, &got); err != nil {
				return fmt.Errorf("key %.8s served undecodable bytes %q", key, raw)
			}
			if got != val {
				return fmt.Errorf("key %.8s served %q, want %q", key, got, val)
			}
		}
		// The victim may exist in pre-corruption states (whole old value),
		// but must never come back as torn JSON.
		if raw, ok := cc.GetRaw(victim); ok {
			var got string
			if err := json.Unmarshal(raw, &got); err != nil {
				return fmt.Errorf("victim served corrupt bytes %q", raw)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("crash sweep: %v", err)
	}
}

// crashPlanJobs builds a small deterministic plan.
func crashPlanJobs() []Job {
	jobs := make([]Job, 0, 4)
	for i := 0; i < 4; i++ {
		i := i
		jobs = append(jobs, New(fmt.Sprintf("jobs/%d", i), KeyOf("crash-plan", i),
			func(context.Context) (map[string]int, error) {
				return map[string]int{"i": i, "sq": i * i}, nil
			}))
	}
	return jobs
}

func marshalResults(t *testing.T, res *RunResult, names []string) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, n := range names {
		if err := enc.Encode(res.Jobs[n].Value); err != nil {
			t.Fatalf("encode %s: %v", n, err)
		}
	}
	return buf.Bytes()
}

// TestCrashSweepJournalResumeByteIdentical is the -resume invariant under
// power cuts: record a full journaled, cached run, then from every crash
// prefix resume (or restart) the sweep and require the final results to be
// byte-identical to the uninterrupted reference run.
func TestCrashSweepJournalResumeByteIdentical(t *testing.T) {
	jobs := crashPlanJobs()
	names := make([]string, len(jobs))
	plan := KeyOf("crash-plan-hash")
	for i, j := range jobs {
		names[i] = j.Name
	}

	// Reference: a plain uninterrupted run.
	refRes, err := Run(context.Background(), crashPlanJobs(), Options{Workers: 1})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	ref := marshalResults(t, refRes, names)

	// Recorded run: cache + journal through the recording seam.
	root := t.TempDir()
	fs := fsio.New(nil)
	rec := fsio.NewRecorder(root, true)
	fs.SetRecorder(rec)
	c, err := OpenCacheFS(root, fs)
	if err != nil {
		t.Fatalf("OpenCacheFS: %v", err)
	}
	jpath := filepath.Join(root, "journal.json")
	j, err := CreateJournalFS(jpath, plan, len(jobs), fs)
	if err != nil {
		t.Fatalf("CreateJournalFS: %v", err)
	}
	if _, err := Run(context.Background(), crashPlanJobs(), Options{Workers: 1, Cache: c, Journal: j}); err != nil {
		t.Fatalf("recorded run: %v", err)
	}
	if err := j.Complete(); err != nil {
		t.Fatalf("Complete: %v", err)
	}

	err = crashsim.RunOpts(rec.Ops(), t.TempDir(), func(dir string) error {
		cc, err := OpenCache(dir)
		if err != nil {
			return err
		}
		cc.SetLog(nil)
		jp := filepath.Join(dir, "journal.json")
		// Resume like vcoma-sweep -resume would; any unusable journal
		// (absent, empty, torn header) means starting fresh.
		rj, _, rerr := ResumeJournal(jp, plan)
		if rerr != nil {
			if rj, rerr = CreateJournal(jp, plan, len(jobs)); rerr != nil {
				return rerr
			}
		}
		res, rerr := Run(context.Background(), crashPlanJobs(), Options{Workers: 1, Cache: cc, Journal: rj})
		if rerr != nil {
			return rerr
		}
		rj.Close()
		if got := marshalResults(t, res, names); !bytes.Equal(got, ref) {
			return fmt.Errorf("resumed results differ from reference:\n got %s\nwant %s", got, ref)
		}
		return nil
	}, crashsim.Options{Every: 2})
	if err != nil {
		t.Fatalf("crash sweep: %v", err)
	}
	_ = os.Remove(jpath) // recorded-run journal already removed by Complete
}
