package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Key is the content hash identifying a job's inputs. Two jobs with the same
// key are guaranteed to compute the same result, so the cache may serve one
// for the other. The empty key marks a job as uncacheable.
type Key string

// KeyOf derives a key from the job's inputs by hashing their canonical JSON
// encodings in order. Go's encoding/json is deterministic for structs (field
// order) and maps (sorted keys), so any mix of configuration structs,
// strings and numbers yields a stable hash. Values that cannot be
// JSON-encoded panic: a non-hashable input is a programming error in the
// job enumeration, not a runtime condition.
func KeyOf(parts ...any) Key {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, p := range parts {
		if err := enc.Encode(p); err != nil {
			panic(fmt.Sprintf("runner: unhashable key part %T: %v", p, err))
		}
	}
	return Key(hex.EncodeToString(h.Sum(nil)))
}

// PlanKey hashes a whole job plan — every job's name and content key, in
// order — identifying the sweep itself rather than any one job. The suite
// journal records it so `-resume` can verify it is continuing the same
// sweep: same experiment enumeration, same configurations, same benchmarks
// and scale.
func PlanKey(jobs []Job) Key {
	parts := make([]any, 0, 2*len(jobs)+1)
	parts = append(parts, "vcoma-plan-v1")
	for i := range jobs {
		parts = append(parts, jobs[i].Name, jobs[i].Key)
	}
	return KeyOf(parts...)
}
