package network

import "testing"

func TestSelfSendIsFree(t *testing.T) {
	f := New(4, 16, 272)
	if got := f.Send(100, 2, 2, BlockTransfer); got != 100 {
		t.Fatalf("self send arrived at %d", got)
	}
	st := f.Stats()
	if st.Requests != 0 || st.Blocks != 0 {
		t.Fatalf("self send counted: %+v", st)
	}
}

func TestCosts(t *testing.T) {
	f := New(4, 16, 272)
	if f.Cost(Request) != 16 || f.Cost(BlockTransfer) != 272 {
		t.Fatal("costs wrong")
	}
	if got := f.Send(0, 0, 1, Request); got != 16 {
		t.Fatalf("request arrival %d", got)
	}
	if got := f.Send(0, 0, 2, BlockTransfer); got != 272 {
		t.Fatalf("block arrival %d", got)
	}
}

func TestPortQueueing(t *testing.T) {
	f := New(4, 16, 272)
	// Two requests to the same destination at the same time serialize.
	a := f.Send(0, 0, 3, Request)
	b := f.Send(0, 1, 3, Request)
	if a != 16 || b != 32 {
		t.Fatalf("arrivals %d, %d", a, b)
	}
	if f.Stats().QueueCycles != 16 {
		t.Fatalf("queue cycles %d", f.Stats().QueueCycles)
	}
	// A request to a different destination does not queue.
	if c := f.Send(0, 2, 1, Request); c != 16 {
		t.Fatalf("independent port queued: %d", c)
	}
}

func TestSeparateVirtualNetworks(t *testing.T) {
	f := New(4, 16, 272)
	f.Send(0, 0, 3, BlockTransfer) // occupies node 3's reply port
	// A request to the same node must NOT wait behind the block.
	if got := f.Send(0, 1, 3, Request); got != 16 {
		t.Fatalf("request waited behind a block: arrived %d", got)
	}
	// But a second block does wait.
	if got := f.Send(0, 2, 3, BlockTransfer); got != 544 {
		t.Fatalf("second block arrived %d, want 544", got)
	}
	if f.Stats().QueueCyclesBlock != 272 {
		t.Fatalf("block queue cycles %d", f.Stats().QueueCyclesBlock)
	}
}

func TestIdlePortDoesNotQueue(t *testing.T) {
	f := New(2, 16, 272)
	f.Send(0, 0, 1, Request)
	// Long after the port drained, no queueing.
	if got := f.Send(1000, 0, 1, Request); got != 1016 {
		t.Fatalf("arrival %d", got)
	}
	if f.Stats().QueueCycles != 0 {
		t.Fatal("idle port queued")
	}
}

func TestStatsAccumulate(t *testing.T) {
	f := New(4, 16, 272)
	f.Send(0, 0, 1, Request)
	f.Send(0, 0, 2, BlockTransfer)
	f.Send(0, 1, 2, BlockTransfer)
	st := f.Stats()
	if st.Requests != 1 || st.Blocks != 2 {
		t.Fatalf("counts %+v", st)
	}
	if st.TotalCycles != 16+272+272 {
		t.Fatalf("wire cycles %d", st.TotalCycles)
	}
	if f.Nodes() != 4 {
		t.Fatalf("nodes %d", f.Nodes())
	}
	if Request.String() == "" || BlockTransfer.String() == "" || MsgKind(9).String() == "" {
		t.Fatal("kind strings")
	}
}
