// Package network models the interconnect of the simulated machine: an
// 8-bit-wide crossbar clocked at half the processor frequency (paper §5.1).
// An 8-byte request message occupies the wire for 16 processor cycles and a
// message carrying one attraction-memory block for 272 cycles.
//
// The model is occupancy-based: each node has an input port whose busy time
// queues incoming messages, which captures hot-spot contention (a home node
// being hammered) without simulating flits.
package network

import (
	"fmt"

	"vcoma/internal/addr"
	"vcoma/internal/obs"
)

// MsgKind distinguishes the two message sizes of the paper's model.
type MsgKind int

const (
	// Request is a small (8-byte) protocol message: read/write requests,
	// invalidations, acknowledgements, replacement hints.
	Request MsgKind = iota
	// BlockTransfer is a message carrying a full attraction-memory block.
	BlockTransfer
)

func (k MsgKind) String() string {
	switch k {
	case Request:
		return "request"
	case BlockTransfer:
		return "block"
	default:
		return fmt.Sprintf("MsgKind(%d)", int(k))
	}
}

// Stats counts fabric activity.
type Stats struct {
	Requests         uint64
	Blocks           uint64
	TotalCycles      uint64 // wire occupancy
	QueueCycles      uint64 // cycles messages spent waiting for busy ports
	QueueCyclesBlock uint64 // portion of QueueCycles suffered by block messages
}

// Fabric is the crossbar. Request and block-reply traffic travel on
// separate virtual networks (the standard protocol-deadlock-avoidance
// design), so a short invalidation never waits behind a 272-cycle block
// transfer; within each network, a node's input port serializes arrivals.
type Fabric struct {
	requestCost uint64
	blockCost   uint64
	reqBusy     []uint64 // request-network port busy-until, per dest
	blkBusy     []uint64 // reply-network port busy-until, per dest
	portWire    []uint64 // cumulative wire occupancy per input port
	stats       Stats
}

// New returns a fabric for nodes nodes with the given message costs in
// processor cycles.
func New(nodes int, requestCost, blockCost uint64) *Fabric {
	return &Fabric{
		requestCost: requestCost,
		blockCost:   blockCost,
		reqBusy:     make([]uint64, nodes),
		blkBusy:     make([]uint64, nodes),
		portWire:    make([]uint64, nodes),
	}
}

// UseSharedChannel collapses the two virtual networks into one: every
// message kind contends for the same input ports. Ablation only; call
// before any traffic.
func (f *Fabric) UseSharedChannel() { f.blkBusy = f.reqBusy }

// Cost returns the contention-free transfer time of a message kind.
func (f *Fabric) Cost(kind MsgKind) uint64 {
	if kind == BlockTransfer {
		return f.blockCost
	}
	return f.requestCost
}

// Send delivers a message from src to dst, departing at the given time, and
// returns the arrival time: departure + queueing at dst's input port +
// transfer. A message to self is free (no network crossing).
func (f *Fabric) Send(now uint64, src, dst addr.Node, kind MsgKind) uint64 {
	if src == dst {
		return now
	}
	cost := f.Cost(kind)
	busy := f.reqBusy
	if kind == BlockTransfer {
		f.stats.Blocks++
		busy = f.blkBusy
	} else {
		f.stats.Requests++
	}
	f.stats.TotalCycles += cost
	f.portWire[dst] += cost
	start := now
	if busy[dst] > start {
		wait := busy[dst] - start
		f.stats.QueueCycles += wait
		if kind == BlockTransfer {
			f.stats.QueueCyclesBlock += wait
		}
		start = busy[dst]
	}
	arrival := start + cost
	busy[dst] = arrival
	return arrival
}

// Stats returns the activity counters.
func (f *Fabric) Stats() Stats { return f.stats }

// PortWireCycles returns the cumulative wire occupancy at node n's input
// port — the numerator of that link's utilization over any cycle window.
func (f *Fabric) PortWireCycles(n addr.Node) uint64 { return f.portWire[n] }

// Nodes returns the fabric's port count.
func (f *Fabric) Nodes() int { return len(f.reqBusy) }

// RegisterMetrics registers the fabric's counters with an observability
// registry: machine-wide message and queueing totals plus one wire-cycle
// series per input port, from which per-link utilization over an epoch is
// the delta divided by the epoch length.
func (f *Fabric) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	r.Probe("net/requests", func() float64 { return float64(f.stats.Requests) })
	r.Probe("net/blocks", func() float64 { return float64(f.stats.Blocks) })
	r.Probe("net/wireCycles", func() float64 { return float64(f.stats.TotalCycles) })
	r.Probe("net/queueCycles", func() float64 { return float64(f.stats.QueueCycles) })
	r.Probe("net/queueCyclesBlock", func() float64 { return float64(f.stats.QueueCyclesBlock) })
	for i := range f.portWire {
		i := i
		r.Probe(fmt.Sprintf("node%02d/net.wireCycles", i), func() float64 { return float64(f.portWire[i]) })
	}
}
