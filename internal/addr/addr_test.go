package addr

import (
	"testing"
	"testing/quick"
)

// paperGeometry is the paper's §5.1 machine.
func paperGeometry() Geometry {
	return Geometry{NodeBits: 5, PageBits: 12, AMBlockBits: 7, AMSetBits: 13, AMAssocBits: 2}
}

func smallGeometry() Geometry {
	return Geometry{NodeBits: 2, PageBits: 8, AMBlockBits: 5, AMSetBits: 6, AMAssocBits: 1}
}

func TestPaperGeometryDerived(t *testing.T) {
	g := paperGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"nodes", g.Nodes(), 32},
		{"am sets", g.AMSets(), 8192},
		{"am assoc", g.AMAssoc(), 4},
		{"blocks per page", g.BlocksPerPage(), 32},
		{"page frames per node", g.PageFramesPerNode(), 1024},
		{"global page sets", g.GlobalPageSets(), 256},
		{"page slots per global set", g.PageSlotsPerGlobalSet(), 128},
		{"page table sets per home", g.PageTableSetsPerHome(), 8},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if g.AMBytesPerNode() != 4<<20 {
		t.Errorf("AM bytes per node = %d, want 4 MB", g.AMBytesPerNode())
	}
	if g.PageSize() != 4096 || g.AMBlockSize() != 128 {
		t.Errorf("page %d block %d", g.PageSize(), g.AMBlockSize())
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	cases := []Geometry{
		{NodeBits: 5, PageBits: 6, AMBlockBits: 7, AMSetBits: 13, AMAssocBits: 2},  // page < block
		{NodeBits: 5, PageBits: 12, AMBlockBits: 7, AMSetBits: 4, AMAssocBits: 2},  // page doesn't fit AM index
		{NodeBits: 8, PageBits: 12, AMBlockBits: 7, AMSetBits: 12, AMAssocBits: 2}, // gps < nodes
		{NodeBits: 25, PageBits: 12, AMBlockBits: 7, AMSetBits: 13, AMAssocBits: 2},
	}
	for i, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, g)
		}
	}
}

func TestDecompositionProperties(t *testing.T) {
	g := paperGeometry()
	err := quick.Check(func(raw uint64) bool {
		v := Virtual(raw % (1 << 40))
		pn := g.Page(v)
		// Home node = p LSBs of the page number (Figure 6).
		if g.HomeNode(v) != Node(uint64(pn)&31) {
			return false
		}
		if g.HomeNodeOfPage(pn) != g.HomeNode(v) {
			return false
		}
		// The global page set includes the home bits.
		gps := g.GlobalPageSet(pn)
		if gps&31 != int(g.HomeNode(v)) {
			return false
		}
		// Page base/offset recompose the address.
		if uint64(g.PageBase(v))+g.PageOffset(v) != uint64(v) {
			return false
		}
		// Directory entry index is the block index within the page.
		if g.DirEntryIndex(v) != int(g.PageOffset(v)>>g.AMBlockBits) {
			return false
		}
		// Block alignment is idempotent and preserves the AM set.
		if g.Block(g.Block(v)) != g.Block(v) {
			return false
		}
		return g.AMSetOfVirtual(v) == g.AMSetOfVirtual(g.Block(v))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPhysicalRoundTrip(t *testing.T) {
	g := smallGeometry()
	err := quick.Check(func(frame uint32, off uint16) bool {
		f := Frame(frame % (1 << 20))
		v := Virtual(uint64(off)) // offset only matters modulo page size
		pa := g.PhysAddr(f, v)
		if g.FrameOf(pa) != f {
			return false
		}
		return uint64(pa)&(g.PageSize()-1) == g.PageOffset(v)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDirAddrRoundTrip(t *testing.T) {
	g := paperGeometry()
	err := quick.Check(func(dp uint16, raw uint64) bool {
		v := Virtual(raw % (1 << 40))
		d := g.DirAddrOf(int(dp), v)
		if g.DirPageOf(d) != int(dp) {
			return false
		}
		return int(uint64(d)-uint64(g.DirPageBase(int(dp)))) == g.DirEntryIndex(v)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestConsecutivePagesSpreadHomes(t *testing.T) {
	g := paperGeometry()
	seen := map[Node]bool{}
	for pn := PageNum(0); pn < 32; pn++ {
		seen[g.HomeNodeOfPage(pn)] = true
	}
	if len(seen) != 32 {
		t.Fatalf("32 consecutive pages hit %d homes, want 32", len(seen))
	}
}

func TestGlobalPageSetCoversPageBlocks(t *testing.T) {
	// All blocks of one page map to consecutive AM sets inside one global
	// page set's range (paper §3.4).
	g := paperGeometry()
	base := Virtual(0x1234000)
	first := g.AMSetOfVirtual(base)
	for b := 0; b < g.BlocksPerPage(); b++ {
		v := base + Virtual(b)*Virtual(g.AMBlockSize())
		if g.AMSetOfVirtual(v) != first+b {
			t.Fatalf("block %d of page maps to set %d, want %d", b, g.AMSetOfVirtual(v), first+b)
		}
	}
}

func TestColouredFrameSameHome(t *testing.T) {
	// A frame composed of (slot, gps) has the same home as any virtual
	// page with that gps — the property that makes L3-TLB and V-COMA
	// directory placement coincide (Figure 4).
	g := paperGeometry()
	err := quick.Check(func(slot uint8, rawPn uint32) bool {
		pn := PageNum(rawPn)
		gps := g.GlobalPageSet(pn)
		f := Frame(uint64(slot%128)<<g.GlobalPageSetBits() | uint64(gps))
		return g.HomeNodeOfFrame(f) == g.HomeNodeOfPage(pn) &&
			g.GlobalPageSetOfFrame(f) == gps
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	if s := paperGeometry().String(); s == "" {
		t.Fatal("empty geometry string")
	}
}

func TestPageTableSetConsistency(t *testing.T) {
	// A page's (home, page-table-set) pair must uniquely determine its
	// global page set — Figure 6's index decomposition is invertible.
	g := paperGeometry()
	seen := map[[2]int]int{}
	for pn := PageNum(0); pn < PageNum(4*g.GlobalPageSets()); pn++ {
		key := [2]int{int(g.HomeNodeOfPage(pn)), g.HomePageTableSet(pn)}
		gps := g.GlobalPageSet(pn)
		if prev, ok := seen[key]; ok && prev != gps {
			t.Fatalf("page %d: (home, set) %v maps to gps %d and %d", pn, key, prev, gps)
		}
		seen[key] = gps
	}
	if len(seen) != g.GlobalPageSets() {
		t.Fatalf("(home, set) pairs: %d, want %d", len(seen), g.GlobalPageSets())
	}
}

func TestDirAddrDenseWithinPage(t *testing.T) {
	// Consecutive blocks of a page get consecutive directory entries in
	// one directory page (§4.2).
	g := paperGeometry()
	base := Virtual(0xABC000)
	prev := g.DirAddrOf(5, base)
	for b := 1; b < g.BlocksPerPage(); b++ {
		v := base + Virtual(b)*Virtual(g.AMBlockSize())
		d := g.DirAddrOf(5, v)
		if d != prev+1 {
			t.Fatalf("block %d: directory address %d, want %d", b, d, prev+1)
		}
		prev = d
	}
}
