// Package addr defines the address types and address arithmetic used by the
// whole simulator: virtual, physical and directory addresses, and the
// machine geometry that decomposes a virtual address into the fields of the
// paper's Figure 6 (home node, global set, global page set, directory-entry
// index).
//
// Throughout the simulator a "page" is a virtual-memory page (2^n bytes) and
// a "block" is an attraction-memory block (2^b bytes) unless stated
// otherwise; the first- and second-level caches have their own, smaller
// block sizes handled inside package cache.
package addr

import "fmt"

// Virtual is a virtual address. The simulated machine uses a PowerPC-like
// segmented global virtual address space in which synonyms do not exist
// (paper §2.2.1), so a Virtual uniquely names a datum machine-wide.
type Virtual uint64

// Physical is a physical address, used by the physically-addressed schemes
// (L0/L1/L2-TLB) and by the coherence protocol of L3-TLB.
type Physical uint64

// PageNum is a virtual page number (Virtual >> PageBits).
type PageNum uint64

// Frame is a physical page-frame number (Physical >> PageBits).
type Frame uint64

// DirAddr is a directory address in V-COMA's directory address space: the
// index of a directory entry within the home node's directory memory
// (paper §4.2). Directory memory is allocated in directory pages of
// BlocksPerPage contiguous entries.
type DirAddr uint64

// Node identifies a processing node, in [0, Nodes).
type Node int

// Geometry captures the machine's address-relevant parameters, all powers of
// two, expressed as bit widths (the paper's p, n, b, s, k).
type Geometry struct {
	NodeBits    uint // p: log2(number of processing nodes)
	PageBits    uint // n: log2(page size in bytes)
	AMBlockBits uint // b: log2(attraction-memory block size in bytes)
	AMSetBits   uint // s: log2(attraction-memory sets per node)
	AMAssocBits uint // k: log2(attraction-memory associativity)
}

// Validate checks the structural constraints the paper's decomposition
// relies on. In particular a page must span at least one AM block
// (n >= b) and there must be at least one global page set per home node
// (s - n + b >= p), so that the page-number bits can carry both the home
// node and the page-table set index of Figure 6.
func (g Geometry) Validate() error {
	if g.PageBits < g.AMBlockBits {
		return fmt.Errorf("addr: page (2^%d B) smaller than AM block (2^%d B)", g.PageBits, g.AMBlockBits)
	}
	if g.PageBits-g.AMBlockBits > g.AMSetBits {
		return fmt.Errorf("addr: a page (2^%d blocks) does not fit the AM index (2^%d sets)",
			g.PageBits-g.AMBlockBits, g.AMSetBits)
	}
	if g.GlobalPageSetBits() < g.NodeBits {
		return fmt.Errorf("addr: %d global page sets cannot carry %d home-node bits (need s-n+b >= p)",
			g.GlobalPageSets(), g.Nodes())
	}
	if g.NodeBits > 20 || g.PageBits > 30 || g.AMSetBits > 30 || g.AMAssocBits > 10 {
		return fmt.Errorf("addr: geometry out of supported range: %+v", g)
	}
	return nil
}

// Nodes returns P, the number of processing nodes.
func (g Geometry) Nodes() int { return 1 << g.NodeBits }

// PageSize returns N, the page size in bytes.
func (g Geometry) PageSize() uint64 { return 1 << g.PageBits }

// AMBlockSize returns B, the attraction-memory block size in bytes.
func (g Geometry) AMBlockSize() uint64 { return 1 << g.AMBlockBits }

// AMSets returns S, the number of attraction-memory sets per node.
func (g Geometry) AMSets() int { return 1 << g.AMSetBits }

// AMAssoc returns K, the attraction-memory associativity.
func (g Geometry) AMAssoc() int { return 1 << g.AMAssocBits }

// AMBlocksPerNode returns S*K, the attraction-memory capacity of one node in
// blocks.
func (g Geometry) AMBlocksPerNode() int { return g.AMSets() * g.AMAssoc() }

// AMBytesPerNode returns the attraction-memory capacity of one node in bytes.
func (g Geometry) AMBytesPerNode() uint64 {
	return uint64(g.AMBlocksPerNode()) << g.AMBlockBits
}

// BlocksPerPage returns N/B, the number of AM blocks per page — also the
// number of entries in one directory page (paper §4.2).
func (g Geometry) BlocksPerPage() int { return 1 << (g.PageBits - g.AMBlockBits) }

// PageFramesPerNode returns the number of whole pages one node's attraction
// memory can hold.
func (g Geometry) PageFramesPerNode() int {
	return int(g.AMBytesPerNode() >> g.PageBits)
}

// GlobalPageSetBits returns log2(GlobalPageSets).
func (g Geometry) GlobalPageSetBits() uint { return g.AMSetBits - (g.PageBits - g.AMBlockBits) }

// GlobalPageSets returns the number of global page sets: S / (N/B). A global
// page set is the group of contiguous global (block) sets in which the
// blocks of a page can reside (paper §3.4).
func (g Geometry) GlobalPageSets() int { return 1 << g.GlobalPageSetBits() }

// PageSlotsPerGlobalSet returns P*K, the maximum number of page slots in one
// global page set (paper §6).
func (g Geometry) PageSlotsPerGlobalSet() int { return g.Nodes() * g.AMAssoc() }

// PageTableSetsPerHome returns the number of page-table sets managed by one
// home node: GlobalPageSets / Nodes. Figure 6's s-p-n+b index bits.
func (g Geometry) PageTableSetsPerHome() int { return 1 << (g.GlobalPageSetBits() - g.NodeBits) }

// --- Virtual-address decomposition (Figure 6) ---

// Page returns the virtual page number of v.
func (g Geometry) Page(v Virtual) PageNum { return PageNum(uint64(v) >> g.PageBits) }

// PageBase returns the first address of the page containing v.
func (g Geometry) PageBase(v Virtual) Virtual {
	return v &^ Virtual(g.PageSize()-1)
}

// PageOffset returns the byte offset of v within its page.
func (g Geometry) PageOffset(v Virtual) uint64 { return uint64(v) & (g.PageSize() - 1) }

// Block returns v aligned down to an attraction-memory block boundary.
func (g Geometry) Block(v Virtual) Virtual {
	return v &^ Virtual(g.AMBlockSize()-1)
}

// HomeNode returns the home node of the page containing v: the p least
// significant bits of the page number.
func (g Geometry) HomeNode(v Virtual) Node {
	return Node(uint64(g.Page(v)) & uint64(g.Nodes()-1))
}

// HomeNodeOfPage returns the home node of page pn.
func (g Geometry) HomeNodeOfPage(pn PageNum) Node {
	return Node(uint64(pn) & uint64(g.Nodes()-1))
}

// GlobalPageSet returns the global page set index of page pn: the low
// s-n+b bits of the page number (which include the home-node bits).
func (g Geometry) GlobalPageSet(pn PageNum) int {
	return int(uint64(pn) & uint64(g.GlobalPageSets()-1))
}

// HomePageTableSet returns the index of the page-table set within the home
// node's page table for page pn: the s-p-n+b bits above the home-node bits.
func (g Geometry) HomePageTableSet(pn PageNum) int {
	return int((uint64(pn) >> g.NodeBits) & uint64(g.PageTableSetsPerHome()-1))
}

// DirEntryIndex returns the index of v's block within its directory page:
// the n-b most significant bits of the page displacement.
func (g Geometry) DirEntryIndex(v Virtual) int {
	return int(g.PageOffset(v) >> g.AMBlockBits)
}

// AMSet returns the attraction-memory set index for an address under
// virtual (or colour-preserving physical) indexing: bits [b, b+s).
func (g Geometry) AMSet(a uint64) int {
	return int((a >> g.AMBlockBits) & uint64(g.AMSets()-1))
}

// AMSetOfVirtual returns the AM set index of virtual address v.
func (g Geometry) AMSetOfVirtual(v Virtual) int { return g.AMSet(uint64(v)) }

// AMSetOfPhysical returns the AM set index of physical address p.
func (g Geometry) AMSetOfPhysical(p Physical) int { return g.AMSet(uint64(p)) }

// --- Physical-address composition ---

// PhysAddr composes a physical address from a frame number and the page
// offset of the original virtual address.
func (g Geometry) PhysAddr(f Frame, v Virtual) Physical {
	return Physical(uint64(f)<<g.PageBits | g.PageOffset(v))
}

// FrameOf returns the frame number of physical address p.
func (g Geometry) FrameOf(p Physical) Frame { return Frame(uint64(p) >> g.PageBits) }

// HomeNodeOfFrame returns the home node a physical frame belongs to in the
// physically-addressed schemes: frames are distributed across nodes by their
// low frame-number bits, mirroring the virtual decomposition.
func (g Geometry) HomeNodeOfFrame(f Frame) Node {
	return Node(uint64(f) & uint64(g.Nodes()-1))
}

// GlobalPageSetOfFrame returns the global page set a frame maps to under
// physical indexing of the attraction memory.
func (g Geometry) GlobalPageSetOfFrame(f Frame) int {
	return int(uint64(f) & uint64(g.GlobalPageSets()-1))
}

// --- Directory addresses (V-COMA) ---

// DirPageBase returns the directory address of entry 0 of directory page
// dp. Directory pages are numbered densely per home node.
func (g Geometry) DirPageBase(dp int) DirAddr {
	return DirAddr(uint64(dp) << (g.PageBits - g.AMBlockBits))
}

// DirAddrOf composes the directory address of v's block given the directory
// page holding its page's entries.
func (g Geometry) DirAddrOf(dp int, v Virtual) DirAddr {
	return g.DirPageBase(dp) + DirAddr(g.DirEntryIndex(v))
}

// DirPageOf returns the directory page number containing directory address d.
func (g Geometry) DirPageOf(d DirAddr) int {
	return int(uint64(d) >> (g.PageBits - g.AMBlockBits))
}

func (g Geometry) String() string {
	return fmt.Sprintf("geometry{nodes=%d page=%dB amblock=%dB amsets=%d assoc=%d gps=%d}",
		g.Nodes(), g.PageSize(), g.AMBlockSize(), g.AMSets(), g.AMAssoc(), g.GlobalPageSets())
}
