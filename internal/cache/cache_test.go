package cache

import (
	"testing"
	"testing/quick"

	"vcoma/internal/config"
)

func wtFLC() *Cache {
	return New(config.CacheConfig{SizeBytes: 256, BlockBytes: 16, Assoc: 1, WriteBack: false})
}

func wbSLC() *Cache {
	return New(config.CacheConfig{SizeBytes: 512, BlockBytes: 32, Assoc: 2, WriteBack: true})
}

func TestReadMissThenHit(t *testing.T) {
	c := wbSLC()
	if r := c.Read(0x100); r.Hit || !r.Allocated {
		t.Fatalf("cold read: %+v", r)
	}
	if r := c.Read(0x10F); !r.Hit { // same 32 B block
		t.Fatalf("same-block read missed: %+v", r)
	}
	if r := c.Read(0x120); r.Hit {
		t.Fatalf("different block hit: %+v", r)
	}
	st := c.Stats()
	if st.ReadHits != 1 || st.ReadMisses != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	c := wtFLC()
	if r := c.Write(0x40); r.Hit || r.Allocated {
		t.Fatalf("WT write miss must not allocate: %+v", r)
	}
	if c.Contains(0x40) {
		t.Fatal("block allocated by WT write miss")
	}
	c.Read(0x40)
	if r := c.Write(0x44); !r.Hit {
		t.Fatalf("write to resident block missed: %+v", r)
	}
	if c.Dirty(0x40) {
		t.Fatal("write-through cache has a dirty line")
	}
	if len(c.Flush()) != 0 {
		t.Fatal("write-through flush produced writebacks")
	}
}

func TestWriteBackAllocateAndEvict(t *testing.T) {
	c := wbSLC() // 8 sets x 2 ways, 32 B blocks: set = (a>>5) & 7
	if r := c.Write(0x0); r.Hit || !r.Allocated {
		t.Fatalf("WB write miss must allocate: %+v", r)
	}
	if !c.Dirty(0x0) {
		t.Fatal("written line not dirty")
	}
	// Two more blocks in set 0 (stride 256 = 8 sets * 32 B).
	c.Read(0x100)
	r := c.Write(0x200) // evicts LRU = 0x0 (dirty)
	if !r.Evicted || r.Victim != 0x0 || !r.VictimDirty {
		t.Fatalf("eviction: %+v", r)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestLRUOrder(t *testing.T) {
	c := wbSLC()
	c.Read(0x0)   // set 0
	c.Read(0x100) // set 0, second way
	c.Read(0x0)   // touch 0x0: now 0x100 is LRU
	r := c.Read(0x200)
	if !r.Evicted || r.Victim != 0x100 {
		t.Fatalf("LRU eviction picked %#x, want 0x100", r.Victim)
	}
}

func TestInvalidate(t *testing.T) {
	c := wbSLC()
	c.Write(0x40)
	present, dirty := c.Invalidate(0x40)
	if !present || !dirty {
		t.Fatalf("invalidate: present=%v dirty=%v", present, dirty)
	}
	if present, _ := c.Invalidate(0x40); present {
		t.Fatal("double invalidate found the block")
	}
}

func TestInvalidateRange(t *testing.T) {
	c := wtFLC() // 16 B blocks
	for a := uint64(0x100); a < 0x140; a += 16 {
		c.Read(a)
	}
	dirty := c.InvalidateRange(0x100, 64) // an AM-block worth
	if len(dirty) != 0 {
		t.Fatalf("WT cache returned dirty blocks: %v", dirty)
	}
	for a := uint64(0x100); a < 0x140; a += 16 {
		if c.Contains(a) {
			t.Fatalf("block %#x survived range invalidation", a)
		}
	}

	wb := wbSLC()
	wb.Write(0x100)
	wb.Read(0x120)
	dirty = wb.InvalidateRange(0x100, 64)
	if len(dirty) != 1 || dirty[0] != 0x100 {
		t.Fatalf("dirty blocks: %v", dirty)
	}
}

func TestFlushReturnsDirty(t *testing.T) {
	c := wbSLC()
	c.Write(0x0)
	c.Read(0x20)
	c.Write(0x40)
	dirty := c.Flush()
	if len(dirty) != 2 {
		t.Fatalf("flush returned %d dirty blocks, want 2", len(dirty))
	}
	if c.OccupiedLines() != 0 {
		t.Fatal("flush left valid lines")
	}
}

func TestValidBlocks(t *testing.T) {
	c := wbSLC()
	c.Read(0x0)
	c.Write(0x40)
	got := c.ValidBlocks()
	if len(got) != 2 {
		t.Fatalf("valid blocks: %v", got)
	}
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	err := quick.Check(func(addrs []uint16) bool {
		c := wbSLC() // 16 lines
		for i, a := range addrs {
			if i%3 == 0 {
				c.Write(uint64(a))
			} else {
				c.Read(uint64(a))
			}
		}
		return c.OccupiedLines() <= 16
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestAccessedBlockAlwaysResidentAfterwards(t *testing.T) {
	// Property: immediately after a read (or a write in a write-back
	// cache), the block is resident.
	err := quick.Check(func(addrs []uint16, writes []bool) bool {
		c := wbSLC()
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			if w {
				c.Write(uint64(a))
			} else {
				c.Read(uint64(a))
			}
			if !c.Contains(uint64(a)) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMissCountsStable(t *testing.T) {
	// Repeating the same scan over a cache larger than the footprint
	// produces no further misses.
	c := wbSLC()
	for a := uint64(0); a < 512; a += 32 {
		c.Read(a)
	}
	before := c.Stats().Misses()
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < 512; a += 32 {
			c.Read(a)
		}
	}
	if c.Stats().Misses() != before {
		t.Fatalf("warm scans missed: %d -> %d", before, c.Stats().Misses())
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unvalidated config")
		}
	}()
	New(config.CacheConfig{SizeBytes: 96, BlockBytes: 32, Assoc: 1})
}
