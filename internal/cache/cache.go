// Package cache implements the processor cache models: a generic
// set-associative cache with LRU replacement, usable write-through
// no-allocate (the paper's FLC) or write-back write-allocate (the SLC).
//
// Caches are indexed by whatever address the enclosing translation scheme
// feeds them — virtual or physical — so the model works on plain uint64
// addresses; the machine layer decides which address space each level sees.
package cache

import (
	"fmt"

	"vcoma/internal/config"
	"vcoma/internal/obs"
)

// Stats counts cache activity.
type Stats struct {
	ReadHits    uint64
	ReadMisses  uint64
	WriteHits   uint64
	WriteMisses uint64
	Writebacks  uint64 // dirty evictions (write-back caches only)
	Invalidates uint64 // external invalidations that found the block
}

// Accesses returns total reads + writes.
func (s Stats) Accesses() uint64 {
	return s.ReadHits + s.ReadMisses + s.WriteHits + s.WriteMisses
}

// Misses returns total read + write misses.
func (s Stats) Misses() uint64 { return s.ReadMisses + s.WriteMisses }

// MissRatio returns Misses/Accesses, or 0 for an untouched cache.
func (s Stats) MissRatio() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(a)
}

// Result reports the outcome of a cache access.
type Result struct {
	// Hit is true when the block was present.
	Hit bool
	// Allocated is true when the access installed the block (miss on a
	// cache that allocates for this access type).
	Allocated bool
	// Evicted is true when installing the block displaced a valid victim.
	Evicted bool
	// Victim is the block-aligned address of the displaced block.
	Victim uint64
	// VictimDirty is true when the victim must be written back.
	VictimDirty bool
}

const (
	stateInvalid uint8 = iota
	stateClean
	stateDirty
)

// Cache is a set-associative cache. It tracks tags and dirty state only; no
// data payloads are simulated.
type Cache struct {
	blockBits uint
	setMask   uint64
	ways      int
	writeBack bool

	// Per-line arrays, set-major: index = set*ways + way.
	tags  []uint64 // block-aligned address
	state []uint8
	age   []uint8 // LRU age within the set; 0 = most recent, ways = fresh

	// dirtyScratch backs InvalidateRange's result between calls, so the
	// inclusion-maintenance path (run on every SLC victim) allocates
	// nothing in steady state.
	dirtyScratch []uint64

	// undo is the set-granular checkpoint journal behind the parallel
	// engine's burst rewind (undo.go). Only the ReadU/WriteU variants
	// consult it; the plain Read/Write hot paths are unaffected.
	undo      *undoLog
	undoArmed bool

	stats Stats
}

// New builds a cache from its configuration. The configuration must already
// be validated.
func New(cfg config.CacheConfig) *Cache {
	sets := cfg.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two (config not validated?)", sets))
	}
	if cfg.Assoc > 255 {
		// Ages are uint8 with "fresh" = ways; no machine config comes close.
		panic(fmt.Sprintf("cache: associativity %d exceeds LRU age range", cfg.Assoc))
	}
	blockBits := uint(0)
	for b := cfg.BlockBytes; b > 1; b >>= 1 {
		blockBits++
	}
	n := sets * cfg.Assoc
	return &Cache{
		blockBits: blockBits,
		setMask:   uint64(sets - 1),
		ways:      cfg.Assoc,
		writeBack: cfg.WriteBack,
		tags:      make([]uint64, n),
		state:     make([]uint8, n),
		age:       make([]uint8, n),
	}
}

// BlockBytes returns the line size.
func (c *Cache) BlockBytes() uint64 { return 1 << c.blockBits }

// BlockAddr aligns a down to this cache's line size.
func (c *Cache) BlockAddr(a uint64) uint64 { return a &^ (c.BlockBytes() - 1) }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.setMask) + 1 }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// WriteBack reports whether the cache is write-back.
func (c *Cache) WriteBack() bool { return c.writeBack }

// Stats returns the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// RegisterMetrics registers this cache's counters under prefix (e.g.
// "node03/slc") with an observability registry. Pull-style probes read the
// existing Stats fields, so the access fast paths gain no new work.
func (c *Cache) RegisterMetrics(r *obs.Registry, prefix string) {
	if r == nil {
		return
	}
	r.Probe(prefix+".readMisses", func() float64 { return float64(c.stats.ReadMisses) })
	r.Probe(prefix+".writeMisses", func() float64 { return float64(c.stats.WriteMisses) })
	r.Probe(prefix+".accesses", func() float64 { return float64(c.stats.Accesses()) })
	r.Probe(prefix+".writebacks", func() float64 { return float64(c.stats.Writebacks) })
	r.Probe(prefix+".invalidates", func() float64 { return float64(c.stats.Invalidates) })
}

func (c *Cache) setBase(a uint64) int {
	return int((a>>c.blockBits)&c.setMask) * c.ways
}

// find returns the line index of a's block, or -1.
func (c *Cache) find(a uint64) int {
	block := c.BlockAddr(a)
	base := c.setBase(a)
	for i := base; i < base+c.ways; i++ {
		if c.state[i] != stateInvalid && c.tags[i] == block {
			return i
		}
	}
	return -1
}

// touch marks line i most recently used within its set.
func (c *Cache) touch(i int) {
	old := c.age[i]
	if old == 0 {
		// Already most recent — repeated hits to the same line (the
		// common case on bursty reference streams) skip the aging loop.
		return
	}
	base := (i / c.ways) * c.ways
	for j := base; j < base+c.ways; j++ {
		if c.age[j] < old {
			c.age[j]++
		}
	}
	c.age[i] = 0
}

// victimWay returns the line index to replace in a's set: an invalid way if
// any, else the LRU way.
func (c *Cache) victimWay(a uint64) int {
	base := c.setBase(a)
	lru, lruAge := base, uint8(0)
	for i := base; i < base+c.ways; i++ {
		if c.state[i] == stateInvalid {
			return i
		}
		if c.age[i] >= lruAge {
			lru, lruAge = i, c.age[i]
		}
	}
	return lru
}

// install places a's block into line i, returning victim information.
func (c *Cache) install(a uint64, i int, dirty bool) Result {
	r := Result{Allocated: true}
	if c.state[i] != stateInvalid {
		r.Evicted = true
		r.Victim = c.tags[i]
		r.VictimDirty = c.state[i] == stateDirty
		if r.VictimDirty {
			c.stats.Writebacks++
		}
	}
	c.tags[i] = c.BlockAddr(a)
	if dirty {
		c.state[i] = stateDirty
	} else {
		c.state[i] = stateClean
	}
	// A freshly installed line enters as the oldest possible so that
	// touch ranks every resident line below it; otherwise an install into
	// an invalid way (age 0) would fail to age its set-mates and LRU
	// would degenerate into position order.
	c.age[i] = uint8(c.ways)
	c.touch(i)
	return r
}

// Read performs a load at address a. On a miss the block is allocated
// (possibly evicting a victim, reported in the Result).
func (c *Cache) Read(a uint64) Result {
	if i := c.find(a); i >= 0 {
		c.stats.ReadHits++
		c.touch(i)
		return Result{Hit: true}
	}
	c.stats.ReadMisses++
	return c.install(a, c.victimWay(a), false)
}

// Write performs a store at address a.
//
// Write-back caches allocate on write misses and mark the line dirty.
// Write-through caches update on hits and do not allocate on misses; the
// store always propagates to the next level (the caller's job) and no line
// is ever dirty.
func (c *Cache) Write(a uint64) Result {
	if i := c.find(a); i >= 0 {
		c.stats.WriteHits++
		c.touch(i)
		if c.writeBack {
			c.state[i] = stateDirty
		}
		return Result{Hit: true}
	}
	c.stats.WriteMisses++
	if !c.writeBack {
		return Result{} // no-allocate
	}
	return c.install(a, c.victimWay(a), true)
}

// Contains reports whether a's block is present, without LRU side effects.
func (c *Cache) Contains(a uint64) bool { return c.find(a) >= 0 }

// Dirty reports whether a's block is present and dirty.
func (c *Cache) Dirty(a uint64) bool {
	i := c.find(a)
	return i >= 0 && c.state[i] == stateDirty
}

// Invalidate removes a's block if present, returning whether it was present
// and whether it was dirty (a dirty invalidation victim must be written
// back by the caller).
func (c *Cache) Invalidate(a uint64) (present, dirty bool) {
	i := c.find(a)
	if i < 0 {
		return false, false
	}
	c.stats.Invalidates++
	dirty = c.state[i] == stateDirty
	c.state[i] = stateInvalid
	return true, dirty
}

// InvalidateRange removes every block of this cache overlapping
// [a, a+bytes), returning the block addresses that were present and dirty.
// Used to maintain inclusion when an outer level (larger blocks) evicts or
// loses a block. The returned slice aliases an internal scratch buffer and
// is only valid until the next InvalidateRange call on this cache.
func (c *Cache) InvalidateRange(a, bytes uint64) (dirtyBlocks []uint64) {
	dirtyBlocks = c.dirtyScratch[:0]
	start := c.BlockAddr(a)
	for b := start; b < a+bytes; b += c.BlockBytes() {
		if present, dirty := c.Invalidate(b); present && dirty {
			dirtyBlocks = append(dirtyBlocks, b)
		}
	}
	c.dirtyScratch = dirtyBlocks
	return dirtyBlocks
}

// Flush invalidates every line, returning the dirty block addresses in
// storage order (the writebacks a real flush would perform).
func (c *Cache) Flush() (dirtyBlocks []uint64) {
	for i := range c.state {
		if c.state[i] == stateDirty {
			dirtyBlocks = append(dirtyBlocks, c.tags[i])
		}
		c.state[i] = stateInvalid
	}
	return dirtyBlocks
}

// ValidBlocks returns the block addresses of every valid line, in storage
// order. Used by inclusion checks and tests.
func (c *Cache) ValidBlocks() []uint64 {
	var out []uint64
	for i, s := range c.state {
		if s != stateInvalid {
			out = append(out, c.tags[i])
		}
	}
	return out
}

// OccupiedLines returns how many lines are valid, for tests and reports.
func (c *Cache) OccupiedLines() int {
	n := 0
	for _, s := range c.state {
		if s != stateInvalid {
			n++
		}
	}
	return n
}
