package cache

// This file is the cache's undo journal, the checkpoint mechanism behind the
// parallel engine's burst phase (internal/sim/parallel.go). A full cache copy
// per round is far too expensive — a burst touches a handful of sets out of
// thousands — so the journal is set-granular and copy-on-write: while armed,
// the first access to each set saves that set's ways, and a rollback restores
// exactly the saved sets. The sequential engine's Read/Write fast paths carry
// no journal check at all; only the burst path's ReadU/WriteU variants do.

// undoLog holds one cache's journal, reused across rounds. mark stamps the
// round epoch each set was last saved in, so arming is O(1) instead of
// clearing a per-set bitmap.
type undoLog struct {
	mark  []uint32
	epoch uint32

	sets  []int32 // saved set indexes, in first-touch order
	tags  []uint64
	state []uint8
	age   []uint8 // flat ways-sized runs, parallel to sets
	stats Stats
}

// ArmUndo opens a checkpoint: subsequent ReadU/WriteU calls journal each
// set before first mutating it, until RollbackUndo or DisarmUndo. Arming
// again discards the previous journal.
func (c *Cache) ArmUndo() {
	u := c.undo
	if u == nil {
		u = &undoLog{mark: make([]uint32, c.Sets())}
		c.undo = u
	}
	u.epoch++
	if u.epoch == 0 { // epoch wrapped: stale marks could alias, reset them
		clear(u.mark)
		u.epoch = 1
	}
	u.sets = u.sets[:0]
	u.tags = u.tags[:0]
	u.state = u.state[:0]
	u.age = u.age[:0]
	u.stats = c.stats
	c.undoArmed = true
}

func (c *Cache) saveSet(set int) {
	u := c.undo
	if u.mark[set] == u.epoch {
		return
	}
	u.mark[set] = u.epoch
	base := set * c.ways
	u.sets = append(u.sets, int32(set))
	u.tags = append(u.tags, c.tags[base:base+c.ways]...)
	u.state = append(u.state, c.state[base:base+c.ways]...)
	u.age = append(u.age, c.age[base:base+c.ways]...)
}

// ReadU is Read for the burst path: with the journal armed it saves the
// accessed set first, so the access can be rolled back.
func (c *Cache) ReadU(a uint64) Result {
	if c.undoArmed {
		c.saveSet(int((a >> c.blockBits) & c.setMask))
	}
	return c.Read(a)
}

// WriteU is Write for the burst path; see ReadU.
func (c *Cache) WriteU(a uint64) Result {
	if c.undoArmed {
		c.saveSet(int((a >> c.blockBits) & c.setMask))
	}
	return c.Write(a)
}

// RollbackUndo restores every journaled set and the statistics captured at
// ArmUndo, closing the checkpoint. The cache is bit-identical to its state
// when the journal was armed, provided every mutation since went through
// ReadU/WriteU.
func (c *Cache) RollbackUndo() {
	u := c.undo
	if u == nil || !c.undoArmed {
		return
	}
	for k, set := range u.sets {
		base, off := int(set)*c.ways, k*c.ways
		copy(c.tags[base:base+c.ways], u.tags[off:off+c.ways])
		copy(c.state[base:base+c.ways], u.state[off:off+c.ways])
		copy(c.age[base:base+c.ways], u.age[off:off+c.ways])
	}
	c.stats = u.stats
	c.undoArmed = false
}

// DisarmUndo closes the checkpoint keeping all mutations (a committed
// burst). Safe to call with no checkpoint open.
func (c *Cache) DisarmUndo() { c.undoArmed = false }
