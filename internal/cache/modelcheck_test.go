package cache

import (
	"testing"
	"testing/quick"

	"vcoma/internal/config"
	"vcoma/internal/prng"
)

// refCache is an obviously-correct reference implementation of a
// set-associative LRU cache: per set, a slice ordered most-recent-first.
// The production cache must agree with it on every observable (hit/miss,
// victim identity, dirty state) for any access sequence.
type refCache struct {
	blockBytes uint64
	sets       int
	ways       int
	writeBack  bool
	lines      [][]refLine // per set, MRU first
}

type refLine struct {
	block uint64
	dirty bool
}

func newRefCache(cfg config.CacheConfig) *refCache {
	return &refCache{
		blockBytes: cfg.BlockBytes,
		sets:       cfg.Sets(),
		ways:       cfg.Assoc,
		writeBack:  cfg.WriteBack,
		lines:      make([][]refLine, cfg.Sets()),
	}
}

func (r *refCache) set(a uint64) int { return int((a / r.blockBytes) % uint64(r.sets)) }
func (r *refCache) block(a uint64) uint64 {
	return a &^ (r.blockBytes - 1)
}

func (r *refCache) find(a uint64) (int, int) {
	s := r.set(a)
	for i, l := range r.lines[s] {
		if l.block == r.block(a) {
			return s, i
		}
	}
	return s, -1
}

// access returns (hit, evicted, victim, victimDirty).
func (r *refCache) access(a uint64, write bool) (bool, bool, uint64, bool) {
	s, i := r.find(a)
	if i >= 0 {
		l := r.lines[s][i]
		if write && r.writeBack {
			l.dirty = true
		}
		// Move to front.
		r.lines[s] = append(r.lines[s][:i], r.lines[s][i+1:]...)
		r.lines[s] = append([]refLine{l}, r.lines[s]...)
		return true, false, 0, false
	}
	if write && !r.writeBack {
		return false, false, 0, false // no-allocate
	}
	nl := refLine{block: r.block(a), dirty: write && r.writeBack}
	var evicted bool
	var victim refLine
	if len(r.lines[s]) == r.ways {
		victim = r.lines[s][len(r.lines[s])-1]
		r.lines[s] = r.lines[s][:len(r.lines[s])-1]
		evicted = true
	}
	r.lines[s] = append([]refLine{nl}, r.lines[s]...)
	return false, evicted, victim.block, victim.dirty
}

func TestCacheAgreesWithReferenceModel(t *testing.T) {
	for _, cfg := range []config.CacheConfig{
		{SizeBytes: 256, BlockBytes: 16, Assoc: 1, WriteBack: false},
		{SizeBytes: 512, BlockBytes: 32, Assoc: 2, WriteBack: true},
		{SizeBytes: 1024, BlockBytes: 32, Assoc: 4, WriteBack: true},
	} {
		cfg := cfg
		err := quick.Check(func(seed uint64) bool {
			c := New(cfg)
			ref := newRefCache(cfg)
			rng := prng.New(seed)
			for op := 0; op < 2000; op++ {
				// A small address pool forces conflicts.
				a := rng.Uint64n(2048)
				write := rng.Intn(3) == 0
				var got Result
				if write {
					got = c.Write(a)
				} else {
					got = c.Read(a)
				}
				hit, evicted, victim, vdirty := ref.access(a, write)
				if got.Hit != hit {
					t.Logf("op %d: addr %#x write=%v: hit %v, ref %v", op, a, write, got.Hit, hit)
					return false
				}
				if got.Evicted != evicted {
					t.Logf("op %d: addr %#x: evicted %v, ref %v", op, a, got.Evicted, evicted)
					return false
				}
				if evicted && (got.Victim != victim || got.VictimDirty != vdirty) {
					t.Logf("op %d: addr %#x: victim %#x/%v, ref %#x/%v",
						op, a, got.Victim, got.VictimDirty, victim, vdirty)
					return false
				}
			}
			return true
		}, &quick.Config{MaxCount: 20})
		if err != nil {
			t.Fatalf("config %+v: %v", cfg, err)
		}
	}
}

func TestCacheAgreesWithModelUnderInvalidation(t *testing.T) {
	cfg := config.CacheConfig{SizeBytes: 512, BlockBytes: 32, Assoc: 2, WriteBack: true}
	err := quick.Check(func(seed uint64) bool {
		c := New(cfg)
		ref := newRefCache(cfg)
		rng := prng.New(seed)
		for op := 0; op < 1000; op++ {
			a := rng.Uint64n(1024)
			switch rng.Intn(4) {
			case 0: // invalidate
				s, i := ref.find(a)
				refPresent := i >= 0
				refDirty := refPresent && ref.lines[s][i].dirty
				if refPresent {
					ref.lines[s] = append(ref.lines[s][:i], ref.lines[s][i+1:]...)
				}
				present, dirty := c.Invalidate(a)
				if present != refPresent || dirty != refDirty {
					return false
				}
			case 1:
				c.Write(a)
				ref.access(a, true)
			default:
				c.Read(a)
				ref.access(a, false)
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}
