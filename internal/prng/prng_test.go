package prng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical values of 100", same)
	}
}

func TestZeroSeed(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("zero seed produced zeros (xorshift fixed point)")
	}
}

func TestIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint8) bool {
		bound := int(n%100) + 1
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nRange(t *testing.T) {
	s := New(7)
	for i := 0; i < 1000; i++ {
		if v := s.Uint64n(13); v >= 13 {
			t.Fatalf("Uint64n(13) = %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	for i := 0; i < 1000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		p := New(seed).Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	New(3).Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestUniformity(t *testing.T) {
	// Coarse chi-square-ish sanity: 16 buckets over 64k draws should each
	// hold ~4096 +- 10%.
	s := New(0xBEEF)
	var buckets [16]int
	const draws = 1 << 16
	for i := 0; i < draws; i++ {
		buckets[s.Uint64()%16]++
	}
	for i, n := range buckets {
		if n < draws/16*9/10 || n > draws/16*11/10 {
			t.Fatalf("bucket %d has %d of %d draws", i, n, draws)
		}
	}
}
