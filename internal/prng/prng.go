// Package prng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// The simulator must be reproducible bit-for-bit across runs and platforms:
// replacement policies (the paper's fully-associative TLB/DLB uses random
// replacement), the COMA-F injection forwarding chain, and the synthetic
// workload generators all consume pseudo-random numbers. Using a seeded
// xorshift generator per consumer keeps every experiment deterministic and
// independent of Go's global rand state.
package prng

// Source is a 64-bit xorshift* generator. The zero value is not a valid
// generator; construct one with New.
type Source struct {
	state uint64
}

// New returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func New(seed uint64) *Source {
	s := &Source{state: seed}
	if s.state == 0 {
		s.state = 0x9E3779B97F4A7C15 // golden-ratio constant
	}
	// Scramble the seed so that small consecutive seeds (0, 1, 2, ...)
	// produce uncorrelated streams.
	for i := 0; i < 4; i++ {
		s.Uint64()
	}
	return s
}

// State returns the generator's internal state, for checkpointing. A
// Source restored with SetState(State()) continues the identical stream.
func (s *Source) State() uint64 { return s.state }

// SetState restores a state previously captured with State. Restoring an
// arbitrary zero value is rejected the same way New rejects a zero seed.
func (s *Source) SetState(v uint64) {
	if v == 0 {
		v = 0x9E3779B97F4A7C15
	}
	s.state = v
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	x := s.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.state = x
	return x * 0x2545F4914F6CDD1D
}

// Uint32 returns the next 32 pseudo-random bits.
func (s *Source) Uint32() uint32 {
	return uint32(s.Uint64() >> 32)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n with zero n")
	}
	return s.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly shuffles n elements using the provided swap
// function, Fisher-Yates style.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
