package config

import "testing"

func TestBaselineMatchesPaper(t *testing.T) {
	c := Baseline()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Geometry.Nodes() != 32 {
		t.Errorf("nodes = %d, want 32", c.Geometry.Nodes())
	}
	if c.FLC.SizeBytes != 16<<10 || c.FLC.BlockBytes != 32 || c.FLC.Assoc != 1 || c.FLC.WriteBack {
		t.Errorf("FLC %+v does not match the paper (16 KB direct-mapped write-through, 32 B)", c.FLC)
	}
	if c.SLC.SizeBytes != 64<<10 || c.SLC.BlockBytes != 64 || c.SLC.Assoc != 4 || !c.SLC.WriteBack {
		t.Errorf("SLC %+v does not match the paper (64 KB 4-way write-back, 64 B)", c.SLC)
	}
	if c.Geometry.AMBytesPerNode() != 4<<20 || c.Geometry.AMBlockSize() != 128 || c.Geometry.AMAssoc() != 4 {
		t.Errorf("AM does not match the paper (4 MB 4-way, 128 B blocks)")
	}
	tm := c.Timing
	if tm.SLCHit != 6 || tm.AMHit != 74 || tm.NetRequest != 16 || tm.NetBlock != 272 || tm.TLBMiss != 40 || tm.DLBMiss != 40 {
		t.Errorf("timing %+v does not match §5.1", tm)
	}
}

func TestSmallTestValidates(t *testing.T) {
	if err := SmallTest().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	base := SmallTest()

	c := base
	c.TLBEntries = 0
	if c.Validate() == nil {
		t.Error("zero TLB entries accepted")
	}

	c = base
	c.TLBOrg = DirectMapped
	c.TLBEntries = 6
	if c.Validate() == nil {
		t.Error("non-power-of-two direct-mapped TLB accepted")
	}

	c = base
	c.FLC.BlockBytes = 64
	c.SLC.BlockBytes = 32
	if c.Validate() == nil {
		t.Error("FLC block larger than SLC block accepted")
	}

	c = base
	c.SLC.BlockBytes = 256 // larger than the 32 B AM block of SmallTest
	if c.Validate() == nil {
		t.Error("SLC block larger than AM block accepted")
	}

	c = base
	c.NoWritebackTLB = true
	c.Scheme = L0TLB
	if c.Validate() == nil {
		t.Error("NoWritebackTLB accepted outside L2-TLB")
	}

	c = base
	c.FLC.SizeBytes = 3000
	if c.Validate() == nil {
		t.Error("non-power-of-two cache size accepted")
	}

	c = base
	c.Scheme = Scheme(99)
	if c.Validate() == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestCacheConfigSets(t *testing.T) {
	c := CacheConfig{SizeBytes: 64 << 10, BlockBytes: 64, Assoc: 4, WriteBack: true}
	if c.Sets() != 256 {
		t.Errorf("sets = %d, want 256", c.Sets())
	}
}

func TestWithScheme(t *testing.T) {
	c := Baseline().WithScheme(L2TLB)
	c.NoWritebackTLB = true
	c2 := c.WithScheme(VCOMA)
	if c2.NoWritebackTLB {
		t.Error("NoWritebackTLB survived a scheme change away from L2-TLB")
	}
	if c2.Scheme != VCOMA {
		t.Errorf("scheme = %v", c2.Scheme)
	}
}

func TestWithTLB(t *testing.T) {
	c := Baseline().WithTLB(128, DirectMapped)
	if c.TLBEntries != 128 || c.TLBOrg != DirectMapped {
		t.Errorf("WithTLB: %d/%v", c.TLBEntries, c.TLBOrg)
	}
}

func TestSchemeStrings(t *testing.T) {
	want := map[Scheme]string{
		L0TLB: "L0-TLB", L1TLB: "L1-TLB", L2TLB: "L2-TLB", L3TLB: "L3-TLB", VCOMA: "V-COMA",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
	if len(Schemes()) != 5 {
		t.Errorf("Schemes() has %d entries", len(Schemes()))
	}
	if FullyAssoc.String() != "FA" || DirectMapped.String() != "DM" {
		t.Error("TLBOrg strings wrong")
	}
}
