package config

import (
	"strings"
	"testing"
)

func TestBaselineMatchesPaper(t *testing.T) {
	c := Baseline()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Geometry.Nodes() != 32 {
		t.Errorf("nodes = %d, want 32", c.Geometry.Nodes())
	}
	if c.FLC.SizeBytes != 16<<10 || c.FLC.BlockBytes != 32 || c.FLC.Assoc != 1 || c.FLC.WriteBack {
		t.Errorf("FLC %+v does not match the paper (16 KB direct-mapped write-through, 32 B)", c.FLC)
	}
	if c.SLC.SizeBytes != 64<<10 || c.SLC.BlockBytes != 64 || c.SLC.Assoc != 4 || !c.SLC.WriteBack {
		t.Errorf("SLC %+v does not match the paper (64 KB 4-way write-back, 64 B)", c.SLC)
	}
	if c.Geometry.AMBytesPerNode() != 4<<20 || c.Geometry.AMBlockSize() != 128 || c.Geometry.AMAssoc() != 4 {
		t.Errorf("AM does not match the paper (4 MB 4-way, 128 B blocks)")
	}
	tm := c.Timing
	if tm.SLCHit != 6 || tm.AMHit != 74 || tm.NetRequest != 16 || tm.NetBlock != 272 || tm.TLBMiss != 40 || tm.DLBMiss != 40 {
		t.Errorf("timing %+v does not match §5.1", tm)
	}
}

func TestSmallTestValidates(t *testing.T) {
	if err := SmallTest().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestValidateRejections covers every error branch of Config.Validate and
// the Geometry and CacheConfig validations it delegates to. Each case
// mutates a valid SmallTest configuration and asserts the right branch
// fired by matching a distinctive fragment of its message.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string // substring of the expected error
	}{
		// Geometry branches.
		{"page smaller than AM block",
			func(c *Config) { c.Geometry.PageBits = 4 }, "smaller than AM block"},
		{"page does not fit AM index",
			func(c *Config) { c.Geometry.AMSetBits = 2 }, "does not fit the AM index"},
		{"too few global page sets for home bits",
			func(c *Config) { c.Geometry.AMSetBits = 4 }, "global page sets"},
		{"geometry out of supported range",
			func(c *Config) { c.Geometry.NodeBits = 21; c.Geometry.AMSetBits = 25 }, "out of supported range"},
		// CacheConfig branches, via FLC and SLC.
		{"FLC size zero",
			func(c *Config) { c.FLC.SizeBytes = 0 }, "FLC size 0"},
		{"FLC size not a power of two",
			func(c *Config) { c.FLC.SizeBytes = 3000 }, "FLC size 3000"},
		{"SLC block not a power of two",
			func(c *Config) { c.SLC.BlockBytes = 24 }, "SLC block 24"},
		{"SLC associativity zero",
			func(c *Config) { c.SLC.Assoc = 0 }, "SLC associativity 0"},
		{"FLC associativity not a power of two",
			func(c *Config) { c.FLC.Assoc = 3 }, "FLC associativity 3"},
		{"SLC smaller than one set",
			func(c *Config) { c.SLC.Assoc = 2; c.SLC.SizeBytes = 32; c.SLC.BlockBytes = 32 }, "smaller than one set"},
		// Config's own branches.
		{"FLC block larger than SLC block",
			func(c *Config) { c.FLC.BlockBytes = 64; c.SLC.BlockBytes = 32 }, "FLC block"},
		{"SLC block larger than AM block",
			func(c *Config) { c.SLC.BlockBytes = 256 }, "larger than AM block"},
		{"scheme above range",
			func(c *Config) { c.Scheme = Scheme(99) }, "unknown scheme"},
		{"scheme below range",
			func(c *Config) { c.Scheme = Scheme(-1) }, "unknown scheme"},
		{"zero TLB entries",
			func(c *Config) { c.TLBEntries = 0 }, "at least one entry"},
		{"negative TLB entries",
			func(c *Config) { c.TLBEntries = -4 }, "at least one entry"},
		{"non-power-of-two direct-mapped TLB",
			func(c *Config) { c.TLBOrg = DirectMapped; c.TLBEntries = 6 }, "not a power of two"},
		{"non-power-of-two set-associative TLB",
			func(c *Config) { c.TLBOrg = SetAssoc2; c.TLBEntries = 12 }, "not a power of two"},
		{"NoWritebackTLB outside L2-TLB",
			func(c *Config) { c.NoWritebackTLB = true; c.Scheme = L0TLB }, "only applies to L2-TLB"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := SmallTest()
			tc.mutate(&c)
			err := c.Validate()
			if err == nil {
				t.Fatal("invalid configuration accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q — wrong branch fired", err, tc.want)
			}
		})
	}
	// A non-power-of-two size is legal only for a fully-associative TLB.
	c := SmallTest()
	c.TLBOrg = FullyAssoc
	c.TLBEntries = 6
	if err := c.Validate(); err != nil {
		t.Errorf("fully-associative TLB of 6 entries rejected: %v", err)
	}
}

func TestCacheConfigSets(t *testing.T) {
	c := CacheConfig{SizeBytes: 64 << 10, BlockBytes: 64, Assoc: 4, WriteBack: true}
	if c.Sets() != 256 {
		t.Errorf("sets = %d, want 256", c.Sets())
	}
}

func TestWithScheme(t *testing.T) {
	c := Baseline().WithScheme(L2TLB)
	c.NoWritebackTLB = true
	c2 := c.WithScheme(VCOMA)
	if c2.NoWritebackTLB {
		t.Error("NoWritebackTLB survived a scheme change away from L2-TLB")
	}
	if c2.Scheme != VCOMA {
		t.Errorf("scheme = %v", c2.Scheme)
	}
}

func TestWithTLB(t *testing.T) {
	c := Baseline().WithTLB(128, DirectMapped)
	if c.TLBEntries != 128 || c.TLBOrg != DirectMapped {
		t.Errorf("WithTLB: %d/%v", c.TLBEntries, c.TLBOrg)
	}
}

func TestSchemeStrings(t *testing.T) {
	want := map[Scheme]string{
		L0TLB: "L0-TLB", L1TLB: "L1-TLB", L2TLB: "L2-TLB", L3TLB: "L3-TLB", VCOMA: "V-COMA",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
	if len(Schemes()) != 5 {
		t.Errorf("Schemes() has %d entries", len(Schemes()))
	}
	if FullyAssoc.String() != "FA" || DirectMapped.String() != "DM" {
		t.Error("TLBOrg strings wrong")
	}
}
