// Package config defines the simulated machine's configuration: the cache
// hierarchy, attraction memory, translation scheme, TLB/DLB organization and
// the timing model. The zero-configuration entry point is Baseline, the
// paper's §5.1 machine.
package config

import (
	"fmt"

	"vcoma/internal/addr"
)

// Scheme selects where dynamic address translation happens — the paper's
// five design options (§3).
type Scheme int

const (
	// L0TLB translates every processor reference before the (physical)
	// first-level cache: the traditional design and the physical-COMA
	// habitual scheme.
	L0TLB Scheme = iota
	// L1TLB places the TLB after a virtual FLC and before a physical SLC.
	// Because the FLC is write-through, every write still consults the TLB.
	L1TLB
	// L2TLB places the TLB after a virtual SLC and before a physical
	// attraction memory. SLC writebacks access the TLB (see NoWritebackTLB).
	L2TLB
	// L3TLB makes the attraction memory virtual too; translation happens on
	// local-node misses and the coherence protocol runs on physical
	// addresses. Pages are colour-allocated (set-associative VP mapping).
	L3TLB
	// VCOMA is the paper's proposal: no per-processor TLB at all. The home
	// node translates virtual addresses to directory addresses through a
	// shared DLB as part of the coherence protocol.
	VCOMA
)

var schemeNames = [...]string{"L0-TLB", "L1-TLB", "L2-TLB", "L3-TLB", "V-COMA"}

func (s Scheme) String() string {
	if s < 0 || int(s) >= len(schemeNames) {
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
	return schemeNames[s]
}

// Schemes lists all five options in paper order.
func Schemes() []Scheme { return []Scheme{L0TLB, L1TLB, L2TLB, L3TLB, VCOMA} }

// TLBOrg is the organization of a TLB or DLB.
type TLBOrg int

const (
	// FullyAssoc is a fully-associative buffer with random replacement
	// (the paper's default, §5.1).
	FullyAssoc TLBOrg = iota
	// DirectMapped is a direct-mapped buffer (the paper's "/DM" variants).
	DirectMapped
	// SetAssoc2 and SetAssoc4 are intermediate organizations used by the
	// associativity ablation (not evaluated in the paper).
	SetAssoc2
	SetAssoc4
)

func (o TLBOrg) String() string {
	switch o {
	case FullyAssoc:
		return "FA"
	case DirectMapped:
		return "DM"
	case SetAssoc2:
		return "2W"
	case SetAssoc4:
		return "4W"
	default:
		return fmt.Sprintf("TLBOrg(%d)", int(o))
	}
}

// CacheConfig describes one level of the processor cache hierarchy.
type CacheConfig struct {
	SizeBytes  uint64 // total capacity
	BlockBytes uint64 // line size
	Assoc      int    // ways; 1 = direct mapped
	WriteBack  bool   // write-back write-allocate if true, else write-through no-allocate
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return int(c.SizeBytes / c.BlockBytes / uint64(c.Assoc)) }

// Validate checks that the cache parameters are positive powers of two and
// consistent.
func (c CacheConfig) Validate(name string) error {
	switch {
	case c.SizeBytes == 0 || c.SizeBytes&(c.SizeBytes-1) != 0:
		return fmt.Errorf("config: %s size %d not a positive power of two", name, c.SizeBytes)
	case c.BlockBytes == 0 || c.BlockBytes&(c.BlockBytes-1) != 0:
		return fmt.Errorf("config: %s block %d not a positive power of two", name, c.BlockBytes)
	case c.Assoc <= 0 || c.Assoc&(c.Assoc-1) != 0:
		return fmt.Errorf("config: %s associativity %d not a positive power of two", name, c.Assoc)
	case c.SizeBytes < c.BlockBytes*uint64(c.Assoc):
		return fmt.Errorf("config: %s smaller than one set (%d < %d*%d)", name, c.SizeBytes, c.BlockBytes, c.Assoc)
	}
	return nil
}

// Timing holds the latency model in processor cycles (paper §5.1).
type Timing struct {
	SLCHit        uint64 // second-level cache hit
	AMHit         uint64 // attraction-memory hit at the local node
	NetRequest    uint64 // 8-byte request message on the crossbar
	NetBlock      uint64 // message carrying one AM block
	TLBMiss       uint64 // TLB miss service time
	DLBMiss       uint64 // DLB miss service time
	DirLookup     uint64 // directory/DLB access at the home node
	SwapFetch     uint64 // refetch of a block whose last copy left the machine
	LockRetryGap  uint64 // back-off between lock acquisition attempts
	BarrierNotify uint64 // cost to signal barrier arrival
}

// Config is the full machine configuration.
type Config struct {
	Geometry addr.Geometry

	FLC CacheConfig
	SLC CacheConfig

	Scheme Scheme

	// TLBEntries is the per-node TLB size (L0..L3) or per-node DLB size
	// (V-COMA).
	TLBEntries int
	// TLBOrg is the TLB/DLB organization.
	TLBOrg TLBOrg
	// NoWritebackTLB models physical pointers stored in the virtual SLC so
	// that writebacks bypass the TLB (the paper's L2-TLB/no_wback variant).
	// Only meaningful for L2TLB.
	NoWritebackTLB bool

	Timing Timing

	// Seed drives all pseudo-random choices (replacement, injection
	// forwarding). Same seed, same run.
	Seed uint64

	// Ablation switches off individual design choices for the ablation
	// studies; all false is the evaluated design.
	Ablation Ablation
}

// Ablation toggles individual simulator design decisions so their
// contribution can be measured (see experiments.AblationStudy).
type Ablation struct {
	// NoMasterRelocation disables promoting an existing Shared copy when
	// a master is evicted: every master eviction injects data instead.
	NoMasterRelocation bool
	// SharedNetworkChannel collapses the request and reply virtual
	// networks into one, making short messages wait behind block
	// transfers.
	SharedNetworkChannel bool
	// InfinitePEBandwidth removes queueing at the home protocol engines.
	InfinitePEBandwidth bool
}

// Baseline returns the paper's §5.1 machine: 32 nodes, 200 MHz processors,
// 16 KB direct-mapped write-through FLC with 32 B blocks, 64 KB 4-way
// write-back SLC with 64 B blocks, 4 MB 4-way attraction memory with 128 B
// blocks, 4 KB pages, and the crossbar/TLB timing constants.
func Baseline() Config {
	return Config{
		Geometry: addr.Geometry{
			NodeBits:    5,  // 32 nodes
			PageBits:    12, // 4 KB pages
			AMBlockBits: 7,  // 128 B AM blocks
			AMSetBits:   13, // 8192 sets -> 4 MB with 4 ways
			AMAssocBits: 2,  // 4-way
		},
		FLC: CacheConfig{SizeBytes: 16 << 10, BlockBytes: 32, Assoc: 1, WriteBack: false},
		SLC: CacheConfig{SizeBytes: 64 << 10, BlockBytes: 64, Assoc: 4, WriteBack: true},

		Scheme:     L0TLB,
		TLBEntries: 8,
		TLBOrg:     FullyAssoc,

		Timing: Timing{
			SLCHit:        6,
			AMHit:         74,
			NetRequest:    16,
			NetBlock:      272,
			TLBMiss:       40,
			DLBMiss:       40,
			DirLookup:     8,
			SwapFetch:     4000,
			LockRetryGap:  40,
			BarrierNotify: 16,
		},
		Seed: 0xC0A1A,
	}
}

// SmallTest returns a scaled-down machine used by unit tests: 4 nodes,
// 256 B pages, tiny caches. All structural invariants still hold, runs are
// fast, and conflict behaviour is easy to trigger.
func SmallTest() Config {
	c := Baseline()
	c.Geometry = addr.Geometry{
		NodeBits:    2, // 4 nodes
		PageBits:    8, // 256 B pages
		AMBlockBits: 5, // 32 B AM blocks
		AMSetBits:   6, // 64 sets -> 4 KB AM per node with 2 ways
		AMAssocBits: 1, // 2-way
	}
	c.FLC = CacheConfig{SizeBytes: 256, BlockBytes: 16, Assoc: 1, WriteBack: false}
	c.SLC = CacheConfig{SizeBytes: 1024, BlockBytes: 32, Assoc: 2, WriteBack: true}
	c.TLBEntries = 4
	return c
}

// Validate checks the whole configuration for consistency.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.FLC.Validate("FLC"); err != nil {
		return err
	}
	if err := c.SLC.Validate("SLC"); err != nil {
		return err
	}
	if c.FLC.BlockBytes > c.SLC.BlockBytes {
		return fmt.Errorf("config: FLC block (%d) larger than SLC block (%d)", c.FLC.BlockBytes, c.SLC.BlockBytes)
	}
	if c.SLC.BlockBytes > c.Geometry.AMBlockSize() {
		return fmt.Errorf("config: SLC block (%d) larger than AM block (%d)", c.SLC.BlockBytes, c.Geometry.AMBlockSize())
	}
	if c.Scheme < L0TLB || c.Scheme > VCOMA {
		return fmt.Errorf("config: unknown scheme %d", int(c.Scheme))
	}
	if c.TLBEntries <= 0 {
		return fmt.Errorf("config: TLB/DLB must have at least one entry, got %d", c.TLBEntries)
	}
	if c.TLBOrg != FullyAssoc && c.TLBEntries&(c.TLBEntries-1) != 0 {
		return fmt.Errorf("config: %v TLB/DLB size %d not a power of two", c.TLBOrg, c.TLBEntries)
	}
	if c.NoWritebackTLB && c.Scheme != L2TLB {
		return fmt.Errorf("config: NoWritebackTLB only applies to L2-TLB, scheme is %v", c.Scheme)
	}
	return nil
}

// WithScheme returns a copy of c with the scheme (and, for V-COMA, nothing
// else) changed.
func (c Config) WithScheme(s Scheme) Config {
	c.Scheme = s
	if s != L2TLB {
		c.NoWritebackTLB = false
	}
	return c
}

// WithTLB returns a copy of c with the TLB/DLB size and organization changed.
func (c Config) WithTLB(entries int, org TLBOrg) Config {
	c.TLBEntries = entries
	c.TLBOrg = org
	return c
}
