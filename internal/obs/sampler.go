package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Sampler snapshots a Registry's scalar metrics every interval simulated
// cycles, building cumulative time series. The simulation engine drives it
// with Tick(now) as processor clocks advance and seals it with Finish at
// the end of the run, so the final sample always equals the run's aggregate
// counters. Tick is a no-op on a nil receiver and costs one comparison
// between epochs.
type Sampler struct {
	reg      *Registry
	interval uint64
	next     uint64
	cycles   []uint64
	rows     [][]float64
}

// NewSampler builds a sampler over reg with the given epoch length in
// simulated cycles.
func NewSampler(reg *Registry, interval uint64) *Sampler {
	if interval == 0 {
		interval = 1
	}
	// The first sample fires at the end of the first epoch, not at cycle 0
	// (where everything is zero).
	return &Sampler{reg: reg, interval: interval, next: interval}
}

// Interval returns the epoch length in cycles (0 for nil).
func (s *Sampler) Interval() uint64 {
	if s == nil {
		return 0
	}
	return s.interval
}

// Tick advances simulated time to now, recording one sample if an epoch
// boundary was crossed since the previous sample. The engine's cycle-ordered
// scheduling makes successive now values non-decreasing; stale ticks are
// ignored.
func (s *Sampler) Tick(now uint64) {
	if s == nil || now < s.next {
		return
	}
	s.sample(now)
}

// Finish records the run's final state at cycle now (the parallel execution
// time), unless a sample at that exact cycle already exists.
func (s *Sampler) Finish(now uint64) {
	if s == nil {
		return
	}
	if n := len(s.cycles); n > 0 && s.cycles[n-1] >= now {
		return
	}
	s.sample(now)
}

func (s *Sampler) sample(now uint64) {
	s.cycles = append(s.cycles, now)
	s.rows = append(s.rows, s.reg.Sample(nil))
	s.next = now - now%s.interval + s.interval
}

// Samples returns how many samples were recorded (0 for nil).
func (s *Sampler) Samples() int {
	if s == nil {
		return 0
	}
	return len(s.cycles)
}

// Series is one metric's sampled values, index-aligned with
// TimeSeries.Cycles.
type Series struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// TimeSeries is the exportable form of a finished sampler: a shared cycle
// axis and one cumulative series per scalar metric. It JSON-round-trips
// losslessly, so it embeds directly into report.RunSummary and runner cache
// sidecar files.
type TimeSeries struct {
	IntervalCycles uint64   `json:"intervalCycles"`
	Cycles         []uint64 `json:"cycles"`
	Series         []Series `json:"series"`
}

// Export assembles the recorded samples into a TimeSeries. Metrics
// registered after sampling began are zero-padded at the front so every
// series has one value per cycle.
func (s *Sampler) Export() TimeSeries {
	if s == nil {
		return TimeSeries{}
	}
	names := s.reg.Names()
	ts := TimeSeries{IntervalCycles: s.interval, Cycles: s.cycles}
	for j, name := range names {
		vals := make([]float64, len(s.rows))
		for i, row := range s.rows {
			if j < len(row) {
				vals[i] = row[j]
			}
		}
		ts.Series = append(ts.Series, Series{Name: name, Values: vals})
	}
	return ts
}

// Last returns the final sampled value of the named metric.
func (ts TimeSeries) Last(name string) (float64, bool) {
	for _, s := range ts.Series {
		if s.Name == name && len(s.Values) > 0 {
			return s.Values[len(s.Values)-1], true
		}
	}
	return 0, false
}

// WriteJSON writes the time series as indented JSON.
func (ts TimeSeries) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ts)
}

// WriteCSV writes the time series as CSV: a "cycles" column followed by one
// column per metric, one row per sample.
func (ts TimeSeries) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"cycles"}, make([]string, 0, len(ts.Series))...)
	for _, s := range ts.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i, c := range ts.Cycles {
		row[0] = strconv.FormatUint(c, 10)
		for j, s := range ts.Series {
			if i < len(s.Values) {
				row[j+1] = strconv.FormatFloat(s.Values[i], 'g', -1, 64)
			} else {
				row[j+1] = ""
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFile writes the series to path, choosing CSV when the path ends in
// ".csv" and JSON otherwise.
func (ts TimeSeries) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if strings.HasSuffix(path, ".csv") {
		werr = ts.WriteCSV(f)
	} else {
		werr = ts.WriteJSON(f)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("obs: writing %s: %w", path, werr)
	}
	return nil
}
