package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTracerCategoriesAndEvents(t *testing.T) {
	tr := NewTracer(16, "sync,coh")
	if !tr.Enabled("sync") || !tr.Enabled("coh") || tr.Enabled("trans") {
		t.Fatal("category filter wrong")
	}
	tr.Complete("sync", "barrier", 0, 0, 100, 50)
	tr.Instant("trans", "tlb-miss", 0, 0, 10) // filtered
	tr.Instant("coh", "inject", 1, 0, 20)
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
	ev := tr.Events()
	if ev[0].Name != "inject" || ev[1].Name != "barrier" {
		t.Fatalf("not sorted by ts: %+v", ev)
	}
}

func TestTracerRingBufferBounds(t *testing.T) {
	tr := NewTracer(4, "")
	for i := 0; i < 10; i++ {
		tr.Instant("c", "e", 0, 0, uint64(i))
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want capacity 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	ev := tr.Events()
	// The most recent 4 events survive.
	if ev[0].TS != 6 || ev[3].TS != 9 {
		t.Fatalf("survivors = %+v", ev)
	}
}

// TestTracerJSONStructure validates the export the way a trace viewer
// would: well-formed JSON, a traceEvents array, required ph/ts/pid/tid
// fields on every event, and monotonic timestamps within each (pid, tid)
// track.
func TestTracerJSONStructure(t *testing.T) {
	tr := NewTracer(64, "")
	// Emit deliberately out of timestamp order across two tracks.
	tr.Complete("coh", "remote-read", 2, 0, 500, 40)
	tr.Instant("trans", "tlb-miss", 1, 0, 100)
	tr.Complete("sync", "barrier", 1, 0, 50, 400)
	tr.Instant("repl", "inject", 2, 0, 90)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf, "node"); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace JSON malformed: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("no events")
	}
	lastTS := make(map[[2]int]float64)
	metadata := 0
	for _, e := range parsed.TraceEvents {
		for _, field := range []string{"ph", "name", "pid", "tid"} {
			if _, ok := e[field]; !ok {
				t.Fatalf("event missing %q: %v", field, e)
			}
		}
		if e["ph"] == "M" {
			metadata++
			continue
		}
		ts, ok := e["ts"].(float64)
		if !ok {
			t.Fatalf("event missing numeric ts: %v", e)
		}
		key := [2]int{int(e["pid"].(float64)), int(e["tid"].(float64))}
		if ts < lastTS[key] {
			t.Fatalf("track %v timestamps not monotonic: %v after %v", key, ts, lastTS[key])
		}
		lastTS[key] = ts
	}
	if metadata != 2 {
		t.Fatalf("want 2 process_name metadata events (pids 1, 2), got %d", metadata)
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	tr.Complete("c", "n", 0, 0, 1, 2)
	tr.Instant("c", "n", 0, 0, 1)
	if tr.Enabled("c") || tr.Len() != 0 || tr.Events() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer not inert")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf, ""); err == nil {
		t.Fatal("nil tracer WriteJSON should error")
	}
}
