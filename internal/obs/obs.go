// Package obs is the simulator-wide instrumentation layer: a metrics
// registry of named counters, gauges, probes and power-of-two latency
// histograms; an epoch sampler that snapshots the registry every N simulated
// cycles into per-node time series; and a structured event tracer emitting
// Chrome trace-event JSON viewable in Perfetto.
//
// The central design constraint is that instrumentation must be near-zero
// cost when disabled. Every emission type in this package — *Counter,
// *Gauge, *Histogram, *Tracer, *Sampler — is a no-op on a nil receiver, so
// call sites hold typed nil pointers when observability is off and pay one
// nil check per event, with no allocation and no interface dispatch. The
// disabled path is asserted allocation-free by TestObsDisabledZeroAlloc and
// measured by BenchmarkObsOverhead at the repository root.
//
// The package is deliberately dependency-free (standard library only) so
// every simulator layer — sim, machine, tlb, cache, coherence, network,
// core — can register metrics and emit events without import cycles.
//
// Nothing in this package is synchronized: one Observer belongs to one
// simulation run, which is single-threaded. Parallel sweeps give each job
// its own Observer.
package obs

// Options configures a new Observer.
type Options struct {
	// MetricsInterval enables the epoch sampler with a snapshot every this
	// many simulated cycles; 0 disables sampling (the registry still
	// accumulates and can be read at the end of the run).
	MetricsInterval uint64
	// TraceCapacity bounds the tracer's event ring buffer; 0 disables
	// tracing entirely (nil Tracer). When the buffer fills, the oldest
	// events are overwritten and counted as dropped, so paper-scale runs
	// cannot OOM.
	TraceCapacity int
	// TraceCategories is a comma-separated category filter for the tracer
	// ("sync,coh" keeps only those categories); empty keeps everything.
	TraceCategories string
}

// Observer bundles the three instrumentation services of one run. A nil
// *Observer disables everything; the accessors below are nil-safe so wiring
// code can thread an Observer unconditionally.
type Observer struct {
	Registry *Registry
	Sampler  *Sampler // nil when sampling is off
	Tracer   *Tracer  // nil when tracing is off
}

// New builds an Observer with a fresh registry and the requested sampler
// and tracer.
func New(opt Options) *Observer {
	o := &Observer{Registry: NewRegistry()}
	if opt.MetricsInterval > 0 {
		o.Sampler = NewSampler(o.Registry, opt.MetricsInterval)
	}
	if opt.TraceCapacity > 0 {
		o.Tracer = NewTracer(opt.TraceCapacity, opt.TraceCategories)
	}
	return o
}

// Reg returns the observer's registry, or nil.
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Registry
}

// Samp returns the observer's sampler, or nil.
func (o *Observer) Samp() *Sampler {
	if o == nil {
		return nil
	}
	return o.Sampler
}

// Tr returns the observer's tracer, or nil.
func (o *Observer) Tr() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}
