package obs

import "sort"

// Counter is a monotonically increasing uint64 metric. All methods are
// no-ops on a nil receiver, so a disabled counter costs one nil check.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a settable float64 metric; nil-safe like Counter.
type Gauge struct{ v float64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// metricKind discriminates registry entries.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindProbe
)

type metric struct {
	name    string
	kind    metricKind
	counter *Counter
	gauge   *Gauge
	probe   func() float64
}

func (m *metric) value() float64 {
	switch m.kind {
	case kindCounter:
		return float64(m.counter.Value())
	case kindGauge:
		return m.gauge.Value()
	default:
		return m.probe()
	}
}

// Registry is a set of named metrics. Scalar metrics (counters, gauges and
// pull-style probes) are sampled into time series by the Sampler; latency
// histograms are registered alongside and exported whole at the end of a
// run. Registering on a nil *Registry returns nil instruments, which are
// themselves no-ops — so one nil check at attach time disables a whole
// subsystem's instrumentation.
//
// Metric names are free-form; the simulator's convention is
// "node07/tlb.misses" for per-node series and "net/requests" for
// machine-wide ones, which is what groups the exported series per node.
type Registry struct {
	metrics []metric
	index   map[string]int
	hists   []*Histogram
	histIdx map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int), histIdx: make(map[string]int)}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op counter) when r is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if i, ok := r.index[name]; ok {
		return r.metrics[i].counter
	}
	c := &Counter{}
	r.add(metric{name: name, kind: kindCounter, counter: c})
	return c
}

// Gauge returns the named gauge, creating it on first use; nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if i, ok := r.index[name]; ok {
		return r.metrics[i].gauge
	}
	g := &Gauge{}
	r.add(metric{name: name, kind: kindGauge, gauge: g})
	return g
}

// Probe registers a pull-style metric: fn is invoked at every sample. This
// is how existing aggregate counters (machine NodeStats, fabric Stats,
// protocol Stats) become time series without adding push calls to hot
// paths. No-op when r is nil. Re-registering a name replaces the probe.
func (r *Registry) Probe(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	if i, ok := r.index[name]; ok {
		r.metrics[i] = metric{name: name, kind: kindProbe, probe: fn}
		return
	}
	r.add(metric{name: name, kind: kindProbe, probe: fn})
}

// Histogram returns the named latency histogram, creating it on first use;
// nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if i, ok := r.histIdx[name]; ok {
		return r.hists[i]
	}
	h := &Histogram{name: name}
	r.histIdx[name] = len(r.hists)
	r.hists = append(r.hists, h)
	return h
}

func (r *Registry) add(m metric) {
	r.index[m.name] = len(r.metrics)
	r.metrics = append(r.metrics, m)
}

// Names returns the scalar metric names in registration order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	out := make([]string, len(r.metrics))
	for i := range r.metrics {
		out[i] = r.metrics[i].name
	}
	return out
}

// Len returns the number of scalar metrics registered.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.metrics)
}

// Sample appends the current value of every scalar metric, in registration
// order, to dst and returns it.
func (r *Registry) Sample(dst []float64) []float64 {
	if r == nil {
		return dst
	}
	for i := range r.metrics {
		dst = append(dst, r.metrics[i].value())
	}
	return dst
}

// Value returns the current value of the named scalar metric.
func (r *Registry) Value(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	i, ok := r.index[name]
	if !ok {
		return 0, false
	}
	return r.metrics[i].value(), true
}

// Histograms snapshots every registered histogram, sorted by name.
func (r *Registry) Histograms() []HistogramSnapshot {
	if r == nil {
		return nil
	}
	out := make([]HistogramSnapshot, 0, len(r.hists))
	for _, h := range r.hists {
		out = append(out, h.Snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
