package obs

import (
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
)

// StartPprof serves net/http/pprof on addr (e.g. "localhost:6060") in a
// background goroutine, so paper-scale runs can be profiled live:
//
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=30
//
// An empty addr is a no-op. The listen error (port taken, bad address) is
// returned synchronously; serve errors after that are ignored, as the
// profiling endpoint is best-effort and must never take the run down.
func StartPprof(addr string) error {
	if addr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	go func() { _ = http.Serve(ln, nil) }()
	return nil
}
