package obs

import (
	"strings"
	"testing"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(7)
	if h.Count() != 0 {
		t.Fatal("nil histogram counted")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry returned live instruments")
	}
	r.Probe("x", func() float64 { return 1 })
	if r.Len() != 0 || r.Sample(nil) != nil {
		t.Fatal("nil registry holds metrics")
	}
}

// TestObsDisabledZeroAlloc is the CI gate for the disabled path: every
// instrument emission on a nil receiver must be allocation-free, or the
// no-op sink would tax paper-scale runs. BenchmarkObsOverhead at the
// repository root measures the cycle cost of the same path end to end.
func TestObsDisabledZeroAlloc(t *testing.T) {
	var (
		c  *Counter
		g  *Gauge
		h  *Histogram
		s  *Sampler
		r  *Registry
		w  *Tracer
		tr *Trace
		sp *Span
	)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		h.Observe(42)
		s.Tick(99999)
		s.Finish(99999)
		r.Sample(nil)
		w.Complete("coh", "remote-read", 3, 0, 100, 40)
		w.Instant("trans", "tlb-miss", 1, 0, 50)
		_ = w.Enabled("sync")
		_ = tr.ID()
		sp = tr.StartSpan("req")
		sp = sp.StartChild("run")
		sp.SetAttr("k", "v")
		sp.SetAttrUint("n", 7)
		sp.End()
		_ = sp.Trace()
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation path allocates: %v allocs/op, want 0", allocs)
	}
}

func TestRegistryCountersAndProbes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Add(3)
	if r.Counter("a") != c {
		t.Fatal("Counter not idempotent per name")
	}
	backing := uint64(0)
	r.Probe("b", func() float64 { return float64(backing) })
	g := r.Gauge("c")
	g.Set(2.5)
	backing = 7

	names := r.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("names = %v", names)
	}
	vals := r.Sample(nil)
	if vals[0] != 3 || vals[1] != 7 || vals[2] != 2.5 {
		t.Fatalf("sample = %v", vals)
	}
	if v, ok := r.Value("b"); !ok || v != 7 {
		t.Fatalf("Value(b) = %v, %v", v, ok)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []uint64{0, 1, 1, 3, 16, 17, 31, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 || s.Max != 1000 || s.Sum != 0+1+1+3+16+17+31+1000 {
		t.Fatalf("snapshot = %+v", s)
	}
	want := map[uint64]uint64{ // lo -> count
		0:   1, // v == 0
		1:   2, // [1,2)
		2:   1, // [2,4): 3
		16:  3, // [16,32): 16, 17, 31
		512: 1, // [512,1024): 1000
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("got %d buckets, want %d: %+v", len(s.Buckets), len(want), s.Buckets)
	}
	for _, b := range s.Buckets {
		if want[b.Lo] != b.Count {
			t.Errorf("bucket lo=%d count=%d, want %d", b.Lo, b.Count, want[b.Lo])
		}
		if b.Lo == 0 && b.Hi != 1 {
			t.Errorf("zero bucket hi = %d", b.Hi)
		}
		if b.Lo > 0 && b.Hi != 2*b.Lo {
			t.Errorf("bucket [%d,%d) not power-of-two", b.Lo, b.Hi)
		}
	}
	out := s.Render()
	if !strings.Contains(out, "lat:") || !strings.Contains(out, "█") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestObserverNilAccessors(t *testing.T) {
	var o *Observer
	if o.Reg() != nil || o.Samp() != nil || o.Tr() != nil {
		t.Fatal("nil observer exposed live services")
	}
	o = New(Options{})
	if o.Registry == nil || o.Sampler != nil || o.Tracer != nil {
		t.Fatal("zero options should build registry only")
	}
	o = New(Options{MetricsInterval: 100, TraceCapacity: 10})
	if o.Sampler == nil || o.Tracer == nil {
		t.Fatal("sampler/tracer not built")
	}
}
