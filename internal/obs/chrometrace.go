package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Event is one Chrome trace-event. The field names follow the Trace Event
// Format (the JSON Perfetto and chrome://tracing load): ph is the phase
// ("X" complete, "i" instant, "M" metadata), ts the timestamp, pid/tid the
// track. The simulator uses simulated processor cycles as the timestamp
// unit (one cycle renders as one microsecond), pid for the node and tid for
// the track within the node.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// Tracer collects events into a bounded ring buffer. When the buffer is
// full the oldest events are overwritten (and counted), so a paper-scale
// run keeps the most recent window instead of growing without bound. All
// emission methods are allocation-free no-ops on a nil receiver.
type Tracer struct {
	events  []Event
	next    int
	full    bool
	dropped uint64
	cats    map[string]struct{} // nil = every category enabled
}

// NewTracer builds a tracer holding at most capacity events. categories is
// a comma-separated filter ("sync,coh,trans"); empty enables everything.
func NewTracer(capacity int, categories string) *Tracer {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	t := &Tracer{events: make([]Event, 0, capacity)}
	if categories != "" {
		t.cats = make(map[string]struct{})
		for _, c := range strings.Split(categories, ",") {
			if c = strings.TrimSpace(c); c != "" {
				t.cats[c] = struct{}{}
			}
		}
	}
	return t
}

// Enabled reports whether events of category cat are recorded. False on a
// nil tracer, which lets call sites skip argument preparation entirely.
func (t *Tracer) Enabled(cat string) bool {
	if t == nil {
		return false
	}
	if t.cats == nil {
		return true
	}
	_, ok := t.cats[cat]
	return ok
}

// push appends an event, overwriting the oldest when full.
func (t *Tracer) push(e Event) {
	if cap(t.events) > len(t.events) && !t.full {
		t.events = append(t.events, e)
		return
	}
	t.full = true
	t.dropped++
	t.events[t.next] = e
	t.next = (t.next + 1) % cap(t.events)
}

// Complete records a duration event on track (pid, tid) spanning
// [ts, ts+dur).
func (t *Tracer) Complete(cat, name string, pid, tid int, ts, dur uint64) {
	if !t.Enabled(cat) {
		return
	}
	t.push(Event{Name: name, Cat: cat, Ph: "X", TS: ts, Dur: dur, PID: pid, TID: tid})
}

// Instant records a point event on track (pid, tid) at ts, thread-scoped.
func (t *Tracer) Instant(cat, name string, pid, tid int, ts uint64) {
	if !t.Enabled(cat) {
		return
	}
	t.push(Event{Name: name, Cat: cat, Ph: "i", TS: ts, PID: pid, TID: tid, S: "t"})
}

// Dropped returns how many events were overwritten by the ring buffer.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns the buffered events sorted by timestamp (stable, so
// same-cycle events keep emission order). Sorting globally by ts guarantees
// monotonic timestamps within every (pid, tid) track, which trace viewers
// require.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.events))
	if t.full {
		out = append(out, t.events[t.next:]...)
		out = append(out, t.events[:t.next]...)
	} else {
		out = append(out, t.events...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// traceFile is the on-disk envelope: the Trace Event Format's "JSON object"
// flavour, which Perfetto and chrome://tracing both accept.
type traceFile struct {
	TraceEvents []Event        `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData,omitempty"`
}

// WriteJSON writes the buffered events as Chrome trace-event JSON. procName
// labels each pid's process track ("node" yields "node 3"); pass "" for no
// metadata. dropped events are noted in otherData so a truncated trace is
// self-describing.
func (t *Tracer) WriteJSON(w io.Writer, procName string) error {
	if t == nil {
		return fmt.Errorf("obs: WriteJSON on nil tracer")
	}
	events := t.Events()
	if procName != "" {
		pids := make(map[int]struct{})
		for i := range events {
			pids[events[i].PID] = struct{}{}
		}
		meta := make([]Event, 0, len(pids))
		for pid := range pids {
			meta = append(meta, Event{
				Name: "process_name", Ph: "M", PID: pid,
				Args: map[string]any{"name": fmt.Sprintf("%s %d", procName, pid)},
			})
		}
		sort.Slice(meta, func(i, j int) bool { return meta[i].PID < meta[j].PID })
		events = append(meta, events...)
	}
	out := traceFile{TraceEvents: events}
	if t.dropped > 0 {
		out.OtherData = map[string]any{"droppedEvents": t.dropped}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteFile writes the trace to path as Chrome trace-event JSON.
func (t *Tracer) WriteFile(path, procName string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := t.WriteJSON(f, procName)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("obs: writing %s: %w", path, werr)
	}
	return nil
}
