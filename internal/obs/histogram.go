package obs

import (
	"fmt"
	"math/bits"
	"strings"
)

// Histogram counts uint64 observations (typically latencies in cycles) into
// power-of-two buckets: bucket i counts values v with bits.Len64(v) == i,
// i.e. v == 0 for bucket 0 and v in [2^(i-1), 2^i) for i >= 1. Observe is
// allocation-free and a no-op on a nil receiver.
type Histogram struct {
	name    string
	count   uint64
	sum     uint64
	max     uint64
	buckets [65]uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.buckets[bits.Len64(v)]++
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// HistogramBucket is one non-empty bucket of a snapshot: values in [Lo, Hi).
type HistogramBucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is the JSON-exportable state of a Histogram.
type HistogramSnapshot struct {
	Name    string            `json:"name"`
	Count   uint64            `json:"count"`
	Sum     uint64            `json:"sum"`
	Max     uint64            `json:"max"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot exports the histogram's current state, keeping only non-empty
// buckets.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Name: h.name, Count: h.count, Sum: h.sum, Max: h.max}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		b := HistogramBucket{Count: c}
		if i > 0 {
			b.Lo = 1 << (i - 1)
			b.Hi = 1 << i
		} else {
			b.Hi = 1 // bucket 0 holds only v == 0
		}
		s.Buckets = append(s.Buckets, b)
	}
	return s
}

// Mean returns the average observation, or 0 for an empty snapshot.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Render formats the snapshot as an aligned text histogram with
// proportional bars, one line per non-empty bucket:
//
//	lat/access: 12345 obs, mean 41.2, max 1892
//	  [   16,   32)     5379 ██████████████████████████
//	  [   32,   64)     1200 ██████
func (s HistogramSnapshot) Render() string {
	var b strings.Builder
	name := s.Name
	if name == "" {
		name = "histogram"
	}
	fmt.Fprintf(&b, "%s: %d obs, mean %.1f, max %d\n", name, s.Count, s.Mean(), s.Max)
	var peak uint64
	for _, bk := range s.Buckets {
		if bk.Count > peak {
			peak = bk.Count
		}
	}
	const barWidth = 40
	for _, bk := range s.Buckets {
		bar := int(bk.Count * barWidth / peak)
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "  [%6d,%6d) %8d %s\n", bk.Lo, bk.Hi, bk.Count, strings.Repeat("█", bar))
	}
	return strings.TrimRight(b.String(), "\n")
}
