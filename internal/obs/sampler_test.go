package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSamplerEpochs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("node00/x")
	s := NewSampler(r, 100)

	c.Add(1)
	s.Tick(10) // before first epoch boundary: no sample
	if s.Samples() != 0 {
		t.Fatal("sampled before first epoch")
	}
	c.Add(1)
	s.Tick(150) // crosses 100
	c.Add(1)
	s.Tick(160) // same epoch: no sample
	s.Tick(320) // crosses 200 and 300: one sample (cumulative series)
	s.Finish(350)
	s.Finish(350) // idempotent

	ts := s.Export()
	if len(ts.Cycles) != 3 {
		t.Fatalf("cycles = %v", ts.Cycles)
	}
	if ts.Cycles[0] != 150 || ts.Cycles[1] != 320 || ts.Cycles[2] != 350 {
		t.Fatalf("cycles = %v", ts.Cycles)
	}
	if got := ts.Series[0].Values; got[0] != 2 || got[1] != 3 || got[2] != 3 {
		t.Fatalf("values = %v", got)
	}
	if v, ok := ts.Last("node00/x"); !ok || v != 3 {
		t.Fatalf("Last = %v, %v", v, ok)
	}
}

func TestSamplerLateRegistrationPads(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(1)
	s := NewSampler(r, 10)
	s.Tick(10)
	r.Counter("b").Add(5)
	s.Finish(20)
	ts := s.Export()
	if len(ts.Series) != 2 {
		t.Fatalf("series = %d", len(ts.Series))
	}
	if b := ts.Series[1]; b.Values[0] != 0 || b.Values[1] != 5 {
		t.Fatalf("late series = %v", b.Values)
	}
}

func TestTimeSeriesJSONRoundTripAndCSV(t *testing.T) {
	r := NewRegistry()
	r.Counter("n/x").Add(4)
	r.Probe("n/y", func() float64 { return 1.25 })
	s := NewSampler(r, 5)
	s.Tick(7)
	s.Finish(12)
	ts := s.Export()

	var buf bytes.Buffer
	if err := ts.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back TimeSeries
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.IntervalCycles != 5 || len(back.Cycles) != 2 || len(back.Series) != 2 {
		t.Fatalf("round trip = %+v", back)
	}
	if back.Series[1].Values[1] != 1.25 {
		t.Fatalf("probe value lost: %+v", back.Series[1])
	}

	buf.Reset()
	if err := ts.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv:\n%s", buf.String())
	}
	if lines[0] != "cycles,n/x,n/y" {
		t.Fatalf("csv header %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "12,4,1.25") {
		t.Fatalf("csv final row %q", lines[2])
	}
}
