package obs

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeStructure(t *testing.T) {
	tr := NewTrace(NewTraceID())
	root := tr.StartSpan("request")
	root.SetAttr("tenant", "acme")
	admit := root.StartChild("admit")
	fsync := admit.StartChild("journal-fsync")
	fsync.End()
	admit.End()
	run := root.StartChild("run")
	run.SetAttrUint("exec_cycles", 12345)
	run.End()
	root.End()

	tree := tr.Export()
	if tree.TraceID != tr.ID() {
		t.Fatalf("tree id %q, trace id %q", tree.TraceID, tr.ID())
	}
	if len(tree.Spans) != 1 {
		t.Fatalf("want 1 root span, got %d", len(tree.Spans))
	}
	r := tree.Spans[0]
	if r.Name != "request" || len(r.Attrs) != 1 || r.Attrs[0].Key != "tenant" {
		t.Fatalf("bad root: %+v", r)
	}
	if len(r.Children) != 2 || r.Children[0].Name != "admit" || r.Children[1].Name != "run" {
		t.Fatalf("bad children: %+v", r.Children)
	}
	if len(r.Children[0].Children) != 1 || r.Children[0].Children[0].Name != "journal-fsync" {
		t.Fatalf("grandchild lost: %+v", r.Children[0])
	}
	if r.Children[1].Attrs[0].Val != "12345" {
		t.Fatalf("uint attr rendered %q", r.Children[1].Attrs[0].Val)
	}
	// The tree must be JSON-exportable (the /trace endpoint serves it raw).
	if _, err := json.Marshal(tree); err != nil {
		t.Fatal(err)
	}
}

func TestSpanTimingMonotone(t *testing.T) {
	tr := NewTrace(NewTraceID())
	root := tr.StartSpan("outer")
	time.Sleep(2 * time.Millisecond)
	in := root.StartChild("inner")
	time.Sleep(2 * time.Millisecond)
	in.End()
	root.End()

	tree := tr.Export()
	r := tree.Spans[0]
	c := r.Children[0]
	if c.StartUS < r.StartUS {
		t.Fatalf("child starts (%d) before parent (%d)", c.StartUS, r.StartUS)
	}
	if c.StartUS+c.DurUS > r.StartUS+r.DurUS {
		t.Fatalf("child ends after parent: child [%d,+%d], parent [%d,+%d]",
			c.StartUS, c.DurUS, r.StartUS, r.DurUS)
	}
	if c.DurUS == 0 || r.DurUS == 0 {
		t.Fatalf("slept spans have zero duration: child %d, root %d", c.DurUS, r.DurUS)
	}
}

func TestSpanOpenSpansExport(t *testing.T) {
	tr := NewTrace(NewTraceID())
	s := tr.StartSpan("open")
	time.Sleep(time.Millisecond)
	tree := tr.Export() // not ended: exports with duration so far
	if tree.Spans[0].DurUS == 0 {
		t.Fatal("open span exported with zero duration")
	}
	s.End()
	first := tr.Export().Spans[0].DurUS
	time.Sleep(time.Millisecond)
	if again := tr.Export().Spans[0].DurUS; again != first {
		t.Fatalf("End not sticky: %d then %d", first, again)
	}
}

func TestSpanNilReceivers(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Fatal("nil trace has an id")
	}
	s := tr.StartSpan("x")
	if s != nil {
		t.Fatal("nil trace returned a live span")
	}
	// All of these must be safe no-ops.
	c := s.StartChild("y")
	c.SetAttr("k", "v")
	c.SetAttrUint("n", 1)
	c.End()
	if c.Trace() != nil {
		t.Fatal("nil span has a trace")
	}
	if got := tr.Export(); got.TraceID != "" || got.Spans != nil {
		t.Fatalf("nil trace exported %+v", got)
	}
	if ev := tr.ChromeEvents(0, 0); ev != nil {
		t.Fatal("nil trace produced events")
	}
	tr.AppendChrome(NewTracer(8, ""), 0, 0)
}

func TestSpanContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if TraceFrom(ctx) != nil || SpanFrom(ctx) != nil {
		t.Fatal("empty context carries a trace")
	}
	if WithTrace(ctx, nil) != ctx || WithSpan(ctx, nil) != ctx {
		t.Fatal("nil install should return ctx unchanged")
	}
	tr := NewTrace(NewTraceID())
	s := tr.StartSpan("root")
	ctx = WithSpan(WithTrace(ctx, tr), s)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace lost in context")
	}
	if SpanFrom(ctx) != s {
		t.Fatal("span lost in context")
	}
}

func TestSpanChromeEvents(t *testing.T) {
	tr := NewTrace(NewTraceID())
	root := tr.StartSpan("request")
	ch := root.StartChild("run")
	ch.SetAttr("bench", "RADIX")
	ch.End()
	root.End()

	evs := tr.ChromeEvents(7, 3)
	if len(evs) != 2 {
		t.Fatalf("want 2 events, got %d", len(evs))
	}
	for _, e := range evs {
		if e.Ph != "X" || e.Cat != "request" || e.PID != 7 || e.TID != 3 {
			t.Fatalf("bad event %+v", e)
		}
		if e.Args["trace_id"] != string(tr.ID()) {
			t.Fatalf("event lost the trace id: %+v", e.Args)
		}
		if e.Dur == 0 {
			t.Fatalf("zero-width slice: %+v", e)
		}
	}
	if evs[1].Args["bench"] != "RADIX" {
		t.Fatalf("attr lost: %+v", evs[1].Args)
	}

	// Appended onto a tracer, the events survive WriteJSON round-trip.
	tracer := NewTracer(16, "")
	tr.AppendChrome(tracer, 7, 3)
	if tracer.Len() != 2 {
		t.Fatalf("tracer holds %d events, want 2", tracer.Len())
	}
}

func TestSpanConcurrentUse(t *testing.T) {
	tr := NewTrace(NewTraceID())
	root := tr.StartSpan("request")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s := root.StartChild("work")
				s.SetAttrUint("j", uint64(j))
				s.End()
				_ = tr.Export()
			}
		}()
	}
	wg.Wait()
	root.End()
	tree := tr.Export()
	if got := len(tree.Spans[0].Children); got != 800 {
		t.Fatalf("lost spans under concurrency: %d of 800", got)
	}
}

func TestValidTraceID(t *testing.T) {
	if id := NewTraceID(); !ValidTraceID(string(id)) {
		t.Fatalf("minted id %q invalid", id)
	}
	for _, bad := range []string{"", "abc", "ABCDEF0123456789", "0123456789abcdeg", "0123456789abcdef0"} {
		if ValidTraceID(bad) {
			t.Fatalf("%q accepted", bad)
		}
	}
}
