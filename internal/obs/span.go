package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"
)

// TraceID correlates one request across every layer it touches: the HTTP
// response that accepted it, every structured log line it caused, the span
// tree served by the trace endpoint, and the exported Perfetto track.
type TraceID string

// NewTraceID mints a random 16-hex-digit trace id.
func NewTraceID() TraceID {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("obs: reading random trace id: %v", err))
	}
	return TraceID(hex.EncodeToString(b[:]))
}

// ValidTraceID reports whether s is a well-formed trace id: exactly 16
// lowercase hex digits.
func ValidTraceID(s string) bool {
	if len(s) != 16 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Attr is one span attribute. Values are strings so the span dump is
// schema-stable; use the SetAttr/SetAttrUint helpers.
type Attr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// spanRecord is one span's storage inside a Trace. Parent is the span id of
// the enclosing span, or -1 for roots.
type spanRecord struct {
	id     int
	parent int
	name   string
	start  time.Duration // since the trace epoch
	end    time.Duration // start for still-open spans until End
	ended  bool
	attrs  []Attr
}

// Trace is one request's span collection: a tree of named, timed spans all
// carrying one TraceID. A nil *Trace disables everything — StartSpan returns
// a nil *Span whose methods are allocation-free no-ops, so call sites thread
// a Trace unconditionally and pay one nil check when tracing is off.
//
// Unlike the rest of this package, a Trace is synchronized: request spans
// cross the HTTP-handler/worker boundary (admit happens on the accepting
// goroutine, run on a worker), so concurrent StartSpan/End/Export must be
// safe. The simulation-loop instruments stay unsynchronized; only this
// request-scoped layer pays for a mutex.
type Trace struct {
	id    TraceID
	epoch time.Time

	mu    sync.Mutex
	spans []spanRecord
}

// NewTrace starts an empty trace with the given id (mint one with
// NewTraceID). The epoch — timestamp zero for every span — is now.
func NewTrace(id TraceID) *Trace {
	return &Trace{id: id, epoch: time.Now()}
}

func (t *Trace) lock()   { t.mu.Lock() }
func (t *Trace) unlock() { t.mu.Unlock() }

// ID returns the trace id ("" for a nil trace).
func (t *Trace) ID() TraceID {
	if t == nil {
		return ""
	}
	return t.id
}

// Span is a handle to one span of a Trace. The zero of the API is the nil
// *Span: every method is a no-op on it, with zero allocations.
type Span struct {
	t  *Trace
	id int
}

// StartSpan opens a root span. Returns nil on a nil trace.
func (t *Trace) StartSpan(name string) *Span {
	return t.startSpan(name, -1)
}

func (t *Trace) startSpan(name string, parent int) *Span {
	if t == nil {
		return nil
	}
	t.lock()
	id := len(t.spans)
	now := time.Since(t.epoch)
	t.spans = append(t.spans, spanRecord{id: id, parent: parent, name: name, start: now, end: now})
	t.unlock()
	return &Span{t: t, id: id}
}

// StartChild opens a span nested under s. Returns nil on a nil span, so
// chains like trace.StartSpan("run").StartChild("simulate") degrade to
// no-ops when tracing is off.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.startSpan(name, s.id)
}

// SetAttr attaches a key/value attribute to the span.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.t.lock()
	r := &s.t.spans[s.id]
	r.attrs = append(r.attrs, Attr{Key: key, Val: val})
	s.t.unlock()
}

// SetAttrUint attaches an integer attribute (rendered in decimal).
func (s *Span) SetAttrUint(key string, val uint64) {
	if s == nil {
		return
	}
	s.SetAttr(key, fmt.Sprintf("%d", val))
}

// End closes the span. Ending twice keeps the first end time; an unended
// span exports with its duration up to the export instant.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.lock()
	r := &s.t.spans[s.id]
	if !r.ended {
		r.ended = true
		r.end = time.Since(s.t.epoch)
	}
	s.t.unlock()
}

// Trace returns the owning trace (nil for a nil span), letting deep layers
// start sibling spans from a handle alone.
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.t
}

// SpanNode is one exported span: timing in microseconds since the trace
// epoch, attributes, and nested children — the JSON the trace endpoint
// serves.
type SpanNode struct {
	Name     string     `json:"name"`
	StartUS  uint64     `json:"start_us"`
	DurUS    uint64     `json:"dur_us"`
	Attrs    []Attr     `json:"attrs,omitempty"`
	Children []SpanNode `json:"children,omitempty"`
}

// SpanTree is a trace's exported form: the id plus its root spans in start
// order.
type SpanTree struct {
	TraceID TraceID    `json:"trace_id"`
	Spans   []SpanNode `json:"spans"`
}

// Export snapshots the trace as a span tree. Open spans export with their
// duration so far. Safe to call while spans are still being recorded.
func (t *Trace) Export() SpanTree {
	if t == nil {
		return SpanTree{}
	}
	t.lock()
	now := time.Since(t.epoch)
	recs := make([]spanRecord, len(t.spans))
	copy(recs, t.spans)
	t.unlock()

	nodes := make([]SpanNode, len(recs))
	for i, r := range recs {
		end := r.end
		if !r.ended {
			end = now
		}
		nodes[i] = SpanNode{
			Name:    r.name,
			StartUS: uint64(r.start / time.Microsecond),
			DurUS:   uint64((end - r.start) / time.Microsecond),
			Attrs:   r.attrs,
		}
	}
	// Children are appended parent-first because span ids are allocation-
	// ordered and a child is always started after its parent.
	var roots []SpanNode
	for i := len(recs) - 1; i >= 0; i-- {
		if p := recs[i].parent; p >= 0 {
			nodes[p].Children = append([]SpanNode{nodes[i]}, nodes[p].Children...)
		}
	}
	for i, r := range recs {
		if r.parent < 0 {
			roots = append(roots, nodes[i])
		}
	}
	sort.SliceStable(roots, func(i, j int) bool { return roots[i].StartUS < roots[j].StartUS })
	return SpanTree{TraceID: t.id, Spans: roots}
}

// ChromeEvents converts the trace into Chrome trace-event "X" slices on the
// (pid, tid) track, one per span, each carrying the trace id and the span's
// attributes as args — the per-request track loaded into Perfetto next to
// the simulator's per-node tracks. Timestamps are microseconds since the
// trace epoch (wall time, unlike the simulator tracks' simulated cycles).
func (t *Trace) ChromeEvents(pid, tid int) []Event {
	if t == nil {
		return nil
	}
	tree := t.Export()
	var out []Event
	var walk func(n SpanNode)
	walk = func(n SpanNode) {
		args := map[string]any{"trace_id": string(tree.TraceID)}
		for _, a := range n.Attrs {
			args[a.Key] = a.Val
		}
		dur := n.DurUS
		if dur == 0 {
			dur = 1 // zero-width slices vanish in viewers
		}
		out = append(out, Event{
			Name: n.Name, Cat: "request", Ph: "X",
			TS: n.StartUS, Dur: dur, PID: pid, TID: tid, Args: args,
		})
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range tree.Spans {
		walk(r)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// AppendChrome pushes the trace's events onto an existing tracer as the
// (pid, tid) track, so per-request spans land in the same Perfetto file as
// the simulator's per-node tracks. No-op when either side is nil.
func (t *Trace) AppendChrome(tr *Tracer, pid, tid int) {
	if t == nil || tr == nil {
		return
	}
	for _, e := range t.ChromeEvents(pid, tid) {
		if tr.Enabled(e.Cat) {
			tr.push(e)
		}
	}
}

// traceCtxKey carries a request's Trace through contexts into the runner,
// the experiment passes and the simulation engine.
type traceCtxKey struct{}

// spanCtxKey carries the innermost open Span, so deep layers nest under it.
type spanCtxKey struct{}

// WithTrace returns a context carrying t. A nil t returns ctx unchanged.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom returns the context's Trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// WithSpan returns a context carrying s as the innermost open span. A nil s
// returns ctx unchanged.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFrom returns the innermost span installed by WithSpan, or nil — on
// which StartChild and every other method are no-ops, so layers instrument
// unconditionally.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
